package bindings

import (
	"strings"
	"testing"

	"repro/internal/xproto"
)

// The paper's example, verbatim (modulo resource-file continuations,
// which arrive here as newlines).
const paperExample = `<Btn1> : f.raise
<Btn2> : f.save f.zoom
<Key>Up : f.warpvertical(-50)`

func TestParsePaperExample(t *testing.T) {
	tbl, err := Parse(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Bindings) != 3 {
		t.Fatalf("got %d bindings, want 3", len(tbl.Bindings))
	}
	b0 := tbl.Bindings[0]
	if b0.Event != xproto.ButtonPress || b0.Button != 1 {
		t.Errorf("binding 0: %+v", b0)
	}
	if len(b0.Invocations) != 1 || b0.Invocations[0].Name != "f.raise" {
		t.Errorf("binding 0 invocations: %v", b0.Invocations)
	}
	b1 := tbl.Bindings[1]
	if len(b1.Invocations) != 2 || b1.Invocations[0].Name != "f.save" || b1.Invocations[1].Name != "f.zoom" {
		t.Errorf("binding 1 invocations: %v (want two functions per binding)", b1.Invocations)
	}
	b2 := tbl.Bindings[2]
	if b2.Event != xproto.KeyPress || b2.Keysym != "Up" {
		t.Errorf("binding 2: %+v", b2)
	}
	if !b2.Invocations[0].HasArg || b2.Invocations[0].Arg != "-50" {
		t.Errorf("binding 2 arg: %+v", b2.Invocations[0])
	}
}

func TestParseModifiers(t *testing.T) {
	tbl, err := Parse("Ctrl Shift <Btn3> : f.lower")
	if err != nil {
		t.Fatal(err)
	}
	b := tbl.Bindings[0]
	want := xproto.ControlMask | xproto.ShiftMask
	if b.Modifiers != want {
		t.Errorf("modifiers = %b, want %b", b.Modifiers, want)
	}
}

func TestParseMetaAlias(t *testing.T) {
	for _, src := range []string{"Meta <Btn1> : f.move", "Alt <Btn1> : f.move", "Mod1 <Btn1> : f.move"} {
		tbl, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if tbl.Bindings[0].Modifiers != xproto.Mod1Mask {
			t.Errorf("%q: modifiers = %b", src, tbl.Bindings[0].Modifiers)
		}
	}
}

func TestParseAnyModifier(t *testing.T) {
	tbl, err := Parse("Any <Btn1> : f.focus")
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Bindings[0].AnyModifier {
		t.Error("AnyModifier not set")
	}
}

func TestParseButtonRelease(t *testing.T) {
	tbl, err := Parse("<Btn1Up> : f.raise")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Bindings[0].Event != xproto.ButtonRelease || tbl.Bindings[0].Button != 1 {
		t.Errorf("%+v", tbl.Bindings[0])
	}
}

func TestParseEnterLeaveMotion(t *testing.T) {
	tbl, err := Parse("<Enter> : f.focus\n<Leave> : f.unfocus\n<Motion> : f.track")
	if err != nil {
		t.Fatal(err)
	}
	events := []xproto.EventType{xproto.EnterNotify, xproto.LeaveNotify, xproto.MotionNotify}
	for i, want := range events {
		if tbl.Bindings[i].Event != want {
			t.Errorf("binding %d: event = %v, want %v", i, tbl.Bindings[i].Event, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"f.raise",                // no event
		"<Btn9> : f.raise",       // bad button
		"<Key> : f.raise",        // missing keysym
		"<Btn1> : raise",         // not an f. function
		"<Btn1> : f.move(50",     // unterminated arg
		"Hyper <Btn1> : f.raise", // unknown modifier
		"<Wheel> : f.raise",      // unknown event
		"<Btn1>Up : f.raise",     // detail on a button event
		"<Btn1> :",               // empty function list
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestLookupButtonMatching(t *testing.T) {
	tbl, err := Parse("<Btn1> : f.raise\nMeta <Btn1> : f.move\n<Btn2> : f.lower")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Lookup(xproto.ButtonPress, 1, "", 0); got == nil || got[0].Name != "f.raise" {
		t.Errorf("plain Btn1 -> %v", got)
	}
	if got := tbl.Lookup(xproto.ButtonPress, 1, "", xproto.Mod1Mask); got == nil || got[0].Name != "f.move" {
		t.Errorf("Meta Btn1 -> %v", got)
	}
	if got := tbl.Lookup(xproto.ButtonPress, 2, "", 0); got == nil || got[0].Name != "f.lower" {
		t.Errorf("Btn2 -> %v", got)
	}
	if got := tbl.Lookup(xproto.ButtonPress, 3, "", 0); got != nil {
		t.Errorf("Btn3 matched: %v", got)
	}
	// Modifier state must match exactly.
	if got := tbl.Lookup(xproto.ButtonPress, 1, "", xproto.ControlMask); got != nil {
		t.Errorf("Ctrl Btn1 matched plain binding: %v", got)
	}
}

func TestLookupIgnoresButtonStateBits(t *testing.T) {
	tbl, _ := Parse("<Btn1> : f.raise")
	state := xproto.Button1Mask // button state bit set during press
	if got := tbl.Lookup(xproto.ButtonPress, 1, "", state); got == nil {
		t.Error("button state bits must not defeat modifier matching")
	}
}

func TestLookupKey(t *testing.T) {
	tbl, _ := Parse("<Key>Up : f.warpvertical(-50)\n<Key>Down : f.warpvertical(50)")
	got := tbl.Lookup(xproto.KeyPress, 0, "Up", 0)
	if got == nil || got[0].Arg != "-50" {
		t.Errorf("Up -> %v", got)
	}
	got = tbl.Lookup(xproto.KeyPress, 0, "Down", 0)
	if got == nil || got[0].Arg != "50" {
		t.Errorf("Down -> %v", got)
	}
	if got := tbl.Lookup(xproto.KeyPress, 0, "Left", 0); got != nil {
		t.Errorf("Left matched: %v", got)
	}
}

func TestLookupAnyModifier(t *testing.T) {
	tbl, _ := Parse("Any <Btn1> : f.focus")
	for _, state := range []uint16{0, xproto.ControlMask, xproto.Mod1Mask | xproto.ShiftMask} {
		if got := tbl.Lookup(xproto.ButtonPress, 1, "", state); got == nil {
			t.Errorf("state %b did not match Any binding", state)
		}
	}
}

func TestLookupFirstMatchWins(t *testing.T) {
	tbl, _ := Parse("<Btn1> : f.raise\n<Btn1> : f.lower")
	got := tbl.Lookup(xproto.ButtonPress, 1, "", 0)
	if got[0].Name != "f.raise" {
		t.Errorf("got %v, want first binding", got)
	}
}

// --- invocation modes (paper §4.2: five ways to call f.iconify) ---

func TestParseTargetModes(t *testing.T) {
	cases := []struct {
		src  string
		mode TargetMode
	}{
		{"f.iconify", TargetCurrent},
		{"f.iconify(multiple)", TargetMultiple},
		{"f.iconify(blob)", TargetClass},
		{"f.iconify(#$)", TargetUnderPointer},
		{"f.iconify(#0x1234)", TargetWindowID},
	}
	for _, tc := range cases {
		invs, err := ParseInvocations(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		tgt, err := ParseTarget(invs[0])
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		if tgt.Mode != tc.mode {
			t.Errorf("%q: mode = %v, want %v", tc.src, tgt.Mode, tc.mode)
		}
	}
}

func TestParseTargetWindowID(t *testing.T) {
	invs, _ := ParseInvocations("f.raise(#0x1234)")
	tgt, err := ParseTarget(invs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Window != 0x1234 {
		t.Errorf("window = %#x, want 0x1234", uint32(tgt.Window))
	}
	invs, _ = ParseInvocations("f.raise(#4660)") // decimal form
	tgt, err = ParseTarget(invs[0])
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Window != 4660 {
		t.Errorf("window = %d, want 4660", uint32(tgt.Window))
	}
}

func TestParseTargetClassName(t *testing.T) {
	invs, _ := ParseInvocations("f.iconify(blob)")
	tgt, _ := ParseTarget(invs[0])
	if tgt.Class != "blob" {
		t.Errorf("class = %q", tgt.Class)
	}
}

func TestParseTargetNumeric(t *testing.T) {
	invs, _ := ParseInvocations("f.warpvertical(-50)")
	tgt, _ := ParseTarget(invs[0])
	if !tgt.HasNum || tgt.Num != -50 {
		t.Errorf("num = %d hasNum=%v", tgt.Num, tgt.HasNum)
	}
}

func TestParseTargetBadWindowID(t *testing.T) {
	invs, _ := ParseInvocations("f.raise(#0xzz)")
	if _, err := ParseTarget(invs[0]); err == nil {
		t.Error("bad window id accepted")
	}
}

func TestInvocationString(t *testing.T) {
	invs, _ := ParseInvocations("f.iconify(blob) f.raise")
	if invs[0].String() != "f.iconify(blob)" || invs[1].String() != "f.raise" {
		t.Errorf("%v", invs)
	}
}

func TestParseInvocationsWhitespace(t *testing.T) {
	invs, err := ParseInvocations("  f.save   f.zoom\tf.raise ")
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 3 {
		t.Fatalf("got %d invocations: %v", len(invs), invs)
	}
	names := []string{"f.save", "f.zoom", "f.raise"}
	for i, want := range names {
		if invs[i].Name != want {
			t.Errorf("inv %d = %q, want %q", i, invs[i].Name, want)
		}
	}
}

func TestParseLargeBindingSet(t *testing.T) {
	var sb strings.Builder
	for i := 1; i <= 5; i++ {
		sb.WriteString("<Btn")
		sb.WriteByte(byte('0' + i))
		sb.WriteString("> : f.raise\n")
	}
	tbl, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Bindings) != 5 {
		t.Errorf("got %d bindings", len(tbl.Bindings))
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperExample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	tbl, _ := Parse(paperExample)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl.Lookup(xproto.ButtonPress, 2, "", 0) == nil {
			b.Fatal("no match")
		}
	}
}
