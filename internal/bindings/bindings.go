// Package bindings parses swm object binding specifications. The paper
// chose the X Toolkit Intrinsics translation syntax "so that those
// familiar with the Xt syntax will not have to learn yet another way of
// specifying actions":
//
//	swm*button.foo.bindings: \
//	    <Btn1>   : f.raise \
//	    <Btn2>   : f.save f.zoom \
//	    <Key>Up  : f.warpvertical(-50)
//
// Each line binds an event description — optional modifiers, an event
// type in angle brackets, and an optional detail — to one or more
// window-manager function invocations. Any number of bindings may be
// given, and any number of functions per binding.
package bindings

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xproto"
)

// Invocation is one window-manager function call, e.g. f.raise or
// f.iconify(blob).
type Invocation struct {
	Name   string // includes the "f." prefix, lowercased
	Arg    string
	HasArg bool
}

func (inv Invocation) String() string {
	if inv.HasArg {
		return fmt.Sprintf("%s(%s)", inv.Name, inv.Arg)
	}
	return inv.Name
}

// Binding maps one event description to a function list.
type Binding struct {
	Event       xproto.EventType
	Button      int    // for ButtonPress/ButtonRelease bindings
	Keysym      string // for KeyPress/KeyRelease bindings
	Modifiers   uint16
	AnyModifier bool
	Invocations []Invocation
}

// Table is a parsed set of bindings for one object.
type Table struct {
	Bindings []Binding
}

// modifier names accepted before the <event> part.
var modifierNames = map[string]uint16{
	"ctrl":  xproto.ControlMask,
	"c":     xproto.ControlMask,
	"shift": xproto.ShiftMask,
	"s":     xproto.ShiftMask,
	"lock":  xproto.LockMask,
	"meta":  xproto.Mod1Mask,
	"m":     xproto.Mod1Mask,
	"alt":   xproto.Mod1Mask,
	"mod1":  xproto.Mod1Mask,
	"mod2":  xproto.Mod2Mask,
	"mod3":  xproto.Mod3Mask,
	"mod4":  xproto.Mod4Mask,
	"mod5":  xproto.Mod5Mask,
}

// Parse parses a bindings attribute value. Bindings are separated by
// newlines (resource-file continuations become newlines when loaded via
// xrdb).
func Parse(src string) (*Table, error) {
	t := &Table{}
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("bindings: line %d: %w", lineno+1, err)
		}
		t.Bindings = append(t.Bindings, b)
	}
	if len(t.Bindings) == 0 {
		return nil, fmt.Errorf("bindings: no bindings in %q", src)
	}
	return t, nil
}

func parseLine(line string) (Binding, error) {
	var b Binding
	// Split at the first ':' that follows the closing '>' (details such
	// as keysym names never contain ':').
	gt := strings.Index(line, ">")
	if gt < 0 {
		return b, fmt.Errorf("missing '<event>' in %q", line)
	}
	colon := strings.Index(line[gt:], ":")
	if colon < 0 {
		return b, fmt.Errorf("missing ':' in %q", line)
	}
	colon += gt
	eventPart := strings.TrimSpace(line[:colon])
	funcPart := strings.TrimSpace(line[colon+1:])

	lt := strings.Index(eventPart, "<")
	if lt < 0 || !strings.HasSuffix(eventPart[:gt+1], ">") && gt >= len(eventPart) {
		return b, fmt.Errorf("malformed event in %q", line)
	}
	modsPart := strings.TrimSpace(eventPart[:lt])
	gtLocal := strings.Index(eventPart, ">")
	typePart := strings.TrimSpace(eventPart[lt+1 : gtLocal])
	detail := strings.TrimSpace(eventPart[gtLocal+1:])

	// Modifiers.
	for _, m := range strings.Fields(modsPart) {
		lm := strings.ToLower(m)
		if lm == "any" {
			b.AnyModifier = true
			continue
		}
		bit, ok := modifierNames[lm]
		if !ok {
			return b, fmt.Errorf("unknown modifier %q", m)
		}
		b.Modifiers |= bit
	}

	// Event type.
	lt2 := strings.ToLower(typePart)
	switch {
	case strings.HasPrefix(lt2, "btn"):
		rest := lt2[3:]
		release := false
		if strings.HasSuffix(rest, "up") {
			release = true
			rest = strings.TrimSuffix(rest, "up")
		} else {
			rest = strings.TrimSuffix(rest, "down")
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 || n > 5 {
			return b, fmt.Errorf("bad button event %q", typePart)
		}
		b.Button = n
		if release {
			b.Event = xproto.ButtonRelease
		} else {
			b.Event = xproto.ButtonPress
		}
	case lt2 == "key":
		b.Event = xproto.KeyPress
		if detail == "" {
			return b, fmt.Errorf("<Key> requires a keysym detail")
		}
		b.Keysym = detail
		detail = ""
	case lt2 == "keyup":
		b.Event = xproto.KeyRelease
		if detail == "" {
			return b, fmt.Errorf("<KeyUp> requires a keysym detail")
		}
		b.Keysym = detail
		detail = ""
	case lt2 == "enter" || lt2 == "enterwindow":
		b.Event = xproto.EnterNotify
	case lt2 == "leave" || lt2 == "leavewindow":
		b.Event = xproto.LeaveNotify
	case lt2 == "motion" || lt2 == "ptrmoved":
		b.Event = xproto.MotionNotify
	default:
		return b, fmt.Errorf("unknown event type %q", typePart)
	}
	if detail != "" {
		return b, fmt.Errorf("unexpected detail %q after <%s>", detail, typePart)
	}

	// Function list.
	invs, err := ParseInvocations(funcPart)
	if err != nil {
		return b, err
	}
	b.Invocations = invs
	return b, nil
}

// ParseInvocations parses a whitespace-separated list of f.* calls, each
// optionally carrying a single parenthesized argument. It is also used
// directly by the swmcmd protocol handler.
func ParseInvocations(s string) ([]Invocation, error) {
	var out []Invocation
	i := 0
	for i < len(s) {
		// Skip whitespace.
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != ' ' && s[i] != '\t' && s[i] != '(' {
			i++
		}
		name := s[start:i]
		if !strings.HasPrefix(strings.ToLower(name), "f.") || len(name) <= 2 {
			return nil, fmt.Errorf("bindings: %q is not a window manager function", name)
		}
		inv := Invocation{Name: strings.ToLower(name)}
		if i < len(s) && s[i] == '(' {
			end := strings.IndexByte(s[i:], ')')
			if end < 0 {
				return nil, fmt.Errorf("bindings: unterminated argument in %q", s)
			}
			inv.Arg = strings.TrimSpace(s[i+1 : i+end])
			inv.HasArg = true
			i += end + 1
		}
		out = append(out, inv)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bindings: empty function list")
	}
	return out, nil
}

// relevantMods masks the modifier state down to the bits bindings can
// express (button state bits are ignored when matching).
const relevantMods = xproto.ShiftMask | xproto.LockMask | xproto.ControlMask |
	xproto.Mod1Mask | xproto.Mod2Mask | xproto.Mod3Mask | xproto.Mod4Mask |
	xproto.Mod5Mask

// Lookup returns the function list bound to the given event, or nil.
// Button is consulted for button events, keysym for key events. The
// modifier state must match exactly (ignoring button bits) unless the
// binding says Any.
func (t *Table) Lookup(ev xproto.EventType, button int, keysym string, state uint16) []Invocation {
	for i := range t.Bindings {
		b := &t.Bindings[i]
		if b.Event != ev {
			continue
		}
		switch ev {
		case xproto.ButtonPress, xproto.ButtonRelease:
			if b.Button != button {
				continue
			}
		case xproto.KeyPress, xproto.KeyRelease:
			if b.Keysym != keysym {
				continue
			}
		}
		if !b.AnyModifier && b.Modifiers != state&relevantMods {
			continue
		}
		return b.Invocations
	}
	return nil
}

// --- Invocation target modes (paper §4.2) ---------------------------------

// TargetMode says how a window-manager function selects its victim.
type TargetMode int

const (
	// TargetCurrent applies to the window the binding context supplies
	// (f.iconify).
	TargetCurrent TargetMode = iota
	// TargetMultiple prompts for windows repeatedly (f.iconify(multiple)).
	TargetMultiple
	// TargetClass applies to every window of a WM_CLASS
	// (f.iconify(blob)).
	TargetClass
	// TargetUnderPointer applies to the window under the mouse
	// (f.iconify(#$)).
	TargetUnderPointer
	// TargetWindowID applies to a specific window ID
	// (f.iconify(#0x1234)).
	TargetWindowID
)

// Target is a parsed invocation argument.
type Target struct {
	Mode   TargetMode
	Class  string
	Window xproto.XID
	// Num is the numeric argument for functions like f.warpvertical(-50).
	Num    int
	HasNum bool
	Raw    string
}

// ParseTarget decodes an invocation argument into a target descriptor.
// An absent argument means TargetCurrent. Numeric arguments (used by
// warp/pan functions) are parsed into Num as well.
func ParseTarget(inv Invocation) (Target, error) {
	if !inv.HasArg || inv.Arg == "" {
		return Target{Mode: TargetCurrent}, nil
	}
	arg := inv.Arg
	t := Target{Raw: arg}
	switch {
	case arg == "#$":
		t.Mode = TargetUnderPointer
	case strings.HasPrefix(arg, "#"):
		idStr := arg[1:]
		base := 10
		if strings.HasPrefix(strings.ToLower(idStr), "0x") {
			idStr = idStr[2:]
			base = 16
		}
		v, err := strconv.ParseUint(idStr, base, 32)
		if err != nil {
			return t, fmt.Errorf("bindings: bad window id %q", arg)
		}
		t.Mode = TargetWindowID
		t.Window = xproto.XID(v)
	case strings.EqualFold(arg, "multiple"):
		t.Mode = TargetMultiple
	default:
		t.Mode = TargetClass
		t.Class = arg
		if n, err := strconv.Atoi(arg); err == nil {
			t.Num = n
			t.HasNum = true
		}
	}
	return t, nil
}
