package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the first rule of the lock-free xserver scheme:
// a struct field is either atomic or it is not — never both. The bug
// class this kills is the mixed access `-race` only catches when a
// test happens to interleave: one site updates a counter with
// atomic.AddInt64 while another reads it bare, or an atomic.Uint64 is
// copied as a plain value (which tears nothing today and everything
// after the next refactor).
//
// Two finding kinds:
//
//   - atomicfield.copy — a field whose type lives in sync/atomic
//     (atomic.Uint64, atomic.Pointer[T], an array of them, ...) is
//     used as a plain value: assigned, copied, compared, passed, or
//     ranged over. Atomics are access-by-method only; the Go memory
//     model gives a plain copy of one no meaning.
//   - atomicfield.mixed — a field that some site accesses through the
//     sync/atomic package functions (atomic.AddInt64(&s.n, 1)) is read
//     or written plainly elsewhere. The finding names the atomic site
//     so the mixed-access pair is exact.
//
// Plain access inside the owning type's constructor — a function
// returning the struct type whose name starts with "new"/"New"/
// "make"/"Make" — is exempt: before the value is shared there is no
// concurrent reader to race with. Composite-literal field keys are
// construction, not access, and are never flagged.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags struct fields accessed both atomically and plainly, and atomic-typed fields copied as plain values",
	Run:  runAtomicField,
}

// isAtomicAccessFunc matches the sync/atomic package-level access
// functions; a &x.f argument to one makes f an atomically-accessed
// field. Methods (atomic.Pointer[T].Store and friends) are excluded:
// their pointer arguments are stored values, not access targets.
func isAtomicAccessFunc(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(f.Name(), prefix) {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a sync/atomic value type, or an
// array of them (copying the array copies every atomic in it).
func isAtomicType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
	case *types.Array:
		return isAtomicType(u.Elem())
	}
	return false
}

// fieldOwner returns the named struct type declaring field, or nil.
func fieldOwner(p *Pass, field *types.Var) *types.Named {
	if field.Pkg() == nil {
		return nil
	}
	scope := field.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}

// isConstructorOf reports whether fd is a constructor for the named
// type: its name starts with new/make (any case) and some result is
// the type (by value or pointer).
func isConstructorOf(p *Pass, fd *ast.FuncDecl, owner *types.Named) bool {
	if owner == nil || fd == nil {
		return false
	}
	lower := strings.ToLower(fd.Name.Name)
	if !strings.HasPrefix(lower, "new") && !strings.HasPrefix(lower, "make") {
		return false
	}
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == owner.Obj() {
			return true
		}
	}
	return false
}

// fieldAccess is one syntactic use of a struct field.
type fieldAccess struct {
	sel    *ast.SelectorExpr
	field  *types.Var
	fd     *ast.FuncDecl // enclosing function, nil at package level
	parent ast.Node      // immediate parent node of sel
	gparent ast.Node     // parent of parent
}

func runAtomicField(p *Pass) {
	if p.Pkg == nil {
		return
	}

	// One walk collects every field selection with its parent chain,
	// and every &x.f passed to a sync/atomic access function.
	var accesses []fieldAccess
	atomicallyUsed := make(map[*types.Var]token.Pos) // field -> representative atomic site
	atomicArg := make(map[*ast.SelectorExpr]bool)    // selections inside a sanctioned &f atomic arg

	for _, file := range p.Files {
		var fd *ast.FuncDecl
		parents := make([]ast.Node, 0, 32)
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				popped := parents[len(parents)-1]
				parents = parents[:len(parents)-1]
				if popped == ast.Node(fd) {
					fd = nil
				}
				return true
			}
			if d, ok := n.(*ast.FuncDecl); ok {
				fd = d
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if f := calleeFunc(p.Info, call); f != nil && isAtomicAccessFunc(f) {
					for _, arg := range call.Args {
						if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
							if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
								if field := selectedField(p, sel); field != nil {
									if _, seen := atomicallyUsed[field]; !seen {
										atomicallyUsed[field] = sel.Pos()
									}
									atomicArg[sel] = true
								}
							}
						}
					}
				}
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if field := selectedField(p, sel); field != nil {
					var parent, gparent ast.Node
					if len(parents) > 0 {
						parent = parents[len(parents)-1]
					}
					if len(parents) > 1 {
						gparent = parents[len(parents)-2]
					}
					accesses = append(accesses, fieldAccess{
						sel: sel, field: field, fd: fd, parent: parent, gparent: gparent,
					})
				}
			}
			parents = append(parents, n)
			return true
		})
	}

	ownerCache := make(map[*types.Var]*types.Named)
	owner := func(field *types.Var) *types.Named {
		if o, ok := ownerCache[field]; ok {
			return o
		}
		o := fieldOwner(p, field)
		ownerCache[field] = o
		return o
	}

	for _, acc := range accesses {
		if isConstructorOf(p, acc.fd, owner(acc.field)) {
			continue
		}
		if isAtomicType(acc.field.Type()) {
			if !atomicValueUseOK(acc) {
				p.Reportf(acc.sel.Pos(), "copy",
					"atomic field %s.%s used as a plain value; sync/atomic types must be accessed through their methods",
					ownerName(owner(acc.field)), acc.field.Name())
			}
			continue
		}
		if at, ok := atomicallyUsed[acc.field]; ok && !atomicArg[acc.sel] {
			p.Reportf(acc.sel.Pos(), "mixed",
				"field %s.%s is accessed atomically (%s) but read or written plainly here; pick one discipline",
				ownerName(owner(acc.field)), acc.field.Name(), p.Fset.Position(at))
		}
	}
}

func ownerName(owner *types.Named) string {
	if owner == nil {
		return "?"
	}
	return owner.Obj().Name()
}

// selectedField resolves sel to the struct field it selects, or nil
// for methods, package selectors and unresolved expressions.
func selectedField(p *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// atomicValueUseOK reports whether a selection of an atomic-typed
// field appears in a sanctioned context: as the receiver of a method
// call (x.f.Load()), indexed then used as a receiver or address
// (x.f[i].Store(v), &x.f[i]), with its address taken (&x.f), sliced
// (aliasing, not copying), measured with len/cap, or ranged over by
// index only (which copies nothing).
func atomicValueUseOK(acc fieldAccess) bool {
	switch parent := acc.parent.(type) {
	case *ast.SelectorExpr:
		// x.f.Load() — method selection on the atomic value; atomics
		// export no fields, so any selection is a method.
		return parent.X == acc.sel
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	case *ast.SliceExpr:
		return parent.X == acc.sel
	case *ast.RangeStmt:
		return parent.X == acc.sel && parent.Value == nil
	case *ast.CallExpr:
		if id, ok := parent.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
		return false
	case *ast.IndexExpr:
		// x.f[i]: fine when the element is then used by method or
		// address; the index expression itself yields an atomic value,
		// so inspect the grandparent.
		if parent.X != acc.sel {
			return false
		}
		switch gp := acc.gparent.(type) {
		case *ast.SelectorExpr:
			return gp.X == parent
		case *ast.UnaryExpr:
			return gp.Op == token.AND
		}
		return false
	}
	return false
}
