package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// XIDLife is a leak heuristic for XID-creating requests. A window
// created by (*Conn).CreateWindow, a batch CreateWindow op, or a raw
// allocID/AllocXID whose identifier never escapes the creating function
// can never be destroyed or rolled back: nothing else will ever hold
// its XID, so the server-side window outlives every reference to it.
// PR 1's Manage rollback and PR 2's batch pipeline both depend on the
// discipline that every created XID reaches either a tracked struct
// field or a destroy path.
//
// The identifier "escapes" when it is used as a call argument or
// receiver, returned, stored into a struct field, map, slice, or
// another variable, or placed in a composite literal. Uses that only
// compare or discard it (`if id == 0`, `_ = id`) do not count: such a
// window is provably unreachable after the function returns.
// Intentional fire-and-forget windows carry a //swm:ok waiver.
var XIDLife = &Analyzer{
	Name: "xidlife",
	Doc:  "flags created XIDs that never reach a destroy/rollback path or a tracked struct field",
	Run:  runXIDLife,
}

// isXIDCreator reports whether f creates a new XID, and the index of
// the XID-carrying result (the cookie itself for batch creates).
func isXIDCreator(f *types.Func) (resultIdx int, ok bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return 0, false
	}
	recv := recvTypeName(f)
	switch f.Name() {
	case "CreateWindow":
		if !strings.HasSuffix(pkg.Path(), "internal/xserver") {
			return 0, false
		}
		switch recv {
		case "Conn":
			return 0, true // (XID, error)
		case "Batch":
			return 0, true // *Cookie
		}
	case "AllocXID", "allocID":
		return 0, true
	}
	return 0, false
}

func runXIDLife(p *Pass) {
	for _, fd := range funcDecls(p.Files) {
		parents := buildParents(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(p.Info, call)
			if f == nil {
				return true
			}
			if _, ok := isXIDCreator(f); !ok {
				return true
			}
			checkXIDUse(p, fd, call, f, parents)
			return true
		})
	}
}

func checkXIDUse(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, f *types.Func, parents map[ast.Node]ast.Node) {
	parent := parents[call]
	switch parent := parent.(type) {
	case *ast.ExprStmt:
		p.Reportf(call.Pos(), "leak",
			"result of %s is discarded: the created window's XID is lost and can never be destroyed",
			qualifiedName(f))
		return
	case *ast.AssignStmt:
		// Which LHS receives the XID? For the tuple form
		// (id, err := conn.CreateWindow) it is index 0; for the
		// single-result batch form it is the position of the call.
		var lhs ast.Expr
		if len(parent.Rhs) == 1 && len(parent.Lhs) > 1 {
			lhs = parent.Lhs[0]
		} else {
			for i, rhs := range parent.Rhs {
				if rhs == call && i < len(parent.Lhs) {
					lhs = parent.Lhs[i]
				}
			}
		}
		if lhs == nil {
			return
		}
		switch lhs := lhs.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				p.Reportf(call.Pos(), "leak",
					"XID result of %s is assigned to _: the created window can never be destroyed",
					qualifiedName(f))
				return
			}
			obj := p.Info.Defs[lhs]
			if obj == nil {
				obj = p.Info.Uses[lhs]
			}
			if obj == nil {
				return
			}
			if !xidEscapes(p, fd, lhs, obj, parents) {
				p.Reportf(call.Pos(), "leak",
					"XID from %s is stored in %q but never reaches a call, return, or tracked field in this function",
					qualifiedName(f), lhs.Name)
			}
		default:
			// Field, index, or other storage: tracked.
		}
	default:
		// The call is an argument, return value, or part of a larger
		// expression: the XID escapes into someone else's custody.
	}
}

// xidEscapes reports whether the variable obj, bound at defIdent, has
// at least one use that passes the XID onward.
func xidEscapes(p *Pass, fd *ast.FuncDecl, defIdent *ast.Ident, obj types.Object, parents map[ast.Node]ast.Node) bool {
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == defIdent {
			return true
		}
		if p.Info.Uses[id] != obj && p.Info.Defs[id] != obj {
			return true
		}
		if useEscapes(id, parents) {
			escapes = true
		}
		return true
	})
	return escapes
}

// useEscapes classifies one use of the XID variable by walking up its
// enclosing expressions.
func useEscapes(id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	var child ast.Node = id
	for n := parents[id]; n != nil; n = parents[n] {
		switch n := n.(type) {
		case *ast.CallExpr:
			return true // argument or receiver chain of a call
		case *ast.ReturnStmt:
			return true
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			return true
		case *ast.IndexExpr:
			return true // map/slice read or write participates in tracking
		case *ast.AssignStmt:
			// On the RHS: escapes unless every target is blank. On the
			// LHS it is just being overwritten.
			for _, rhs := range n.Rhs {
				if containsNode(rhs, child) {
					for _, lhs := range n.Lhs {
						if !isBlank(lhs) {
							return true
						}
					}
				}
			}
			return false
		case *ast.BinaryExpr, *ast.ParenExpr, *ast.UnaryExpr:
			child = n
			continue
		case ast.Stmt:
			return false // if-condition, switch tag, etc: a bare read
		}
		child = n
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// buildParents maps every node in the subtree to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
