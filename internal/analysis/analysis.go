// Package analysis is swm's repo-specific static-analysis suite. It
// enforces, by machine, the invariants earlier PRs established by hand:
// the PR 1 rule that no X request error is silently swallowed (every
// one is routed through a check helper or explicitly waived), the PR 2
// rule that the server's RWMutex is never re-entered, the rule that
// XID-creating requests cannot leak their window, the rule that every
// `f.*` function name and binding modifier written in a policy string
// actually exists, and the paper's 32767x32767 desktop coordinate
// limit.
//
// The concurrency suite machine-checks the striped/lock-free xserver
// scheme (DESIGN.md §12–13): lockorder models the full hierarchy
// Server.mu > stripes > inputMu > Conn.qMu/errMu, atomicfield forbids
// mixed atomic/plain access to a field, snapshotimmut freezes values
// published through atomic.Pointer Stores, seqlock pins the odd/even
// writer and retry-reader protocols of seq-guarded entries, and
// waiveraudit keeps the //swm:ok ledger from accreting dead entries.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types); there is deliberately no golang.org/x/tools dependency so
// the module stays dependency-free. Packages are type-checked against
// export data obtained from `go list -export`, which the Go toolchain
// produces from its build cache.
//
// A finding may be waived in source with a trailing or preceding
// comment of the form:
//
//	//swm:ok <reason>
//
// The reason is mandatory; a bare `//swm:ok` does not waive anything.
// Waived findings are still reported (with Waived set) so `swmvet
// -json` output stays a complete inventory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's short name ("conncheck", ...). Finding IDs
	// are derived from it.
	Name string
	// Doc is a one-line description shown by `swmvet -list`.
	Doc string
	// Run reports findings on the pass via Pass.Reportf.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ConnCheck,
		LockOrder,
		XIDLife,
		FuncRef,
		CoordGuard,
		AtomicField,
		SnapshotImmut,
		SeqLock,
		WaiverAudit,
	}
}

// ByName resolves a comma-separated analyzer name list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Ctx carries repo-level context shared by every pass (the module
	// root and the f.*/modifier registry extracted from it).
	Ctx *Context

	findings []Finding
}

// A Finding is one report. File is relative to the module root when the
// file is inside it. Stable IDs have the form "<analyzer>.<kind>".
type Finding struct {
	Analyzer string `json:"analyzer"`
	ID       string `json:"id"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
	Reason   string `json:"reason,omitempty"`

	// anchorLine is an additional line whose //swm:ok waiver also
	// covers this finding — used for findings inside multi-line string
	// literals, where the offending line is string content and cannot
	// carry a comment of its own.
	anchorLine int
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.ID, f.Message)
}

// Reportf records a finding at pos. kind is the ID suffix.
func (p *Pass) Reportf(pos token.Pos, kind, format string, args ...any) {
	p.report(pos, token.NoPos, kind, format, args...)
}

// ReportfAnchored records a finding at pos whose waiver may also sit on
// anchor's line (the enclosing string literal's first line).
func (p *Pass) ReportfAnchored(pos, anchor token.Pos, kind, format string, args ...any) {
	p.report(pos, anchor, kind, format, args...)
}

func (p *Pass) report(pos, anchor token.Pos, kind, format string, args ...any) {
	position := p.Fset.Position(pos)
	f := Finding{
		Analyzer: p.Analyzer.Name,
		ID:       p.Analyzer.Name + "." + kind,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
	if anchor.IsValid() {
		f.anchorLine = p.Fset.Position(anchor).Line
	}
	p.findings = append(p.findings, f)
}

// Run executes the given analyzers over one loaded package, applies
// //swm:ok waivers, and returns findings sorted by position.
//
// WaiverAudit is special: it reports waivers no other analyzer's
// findings consume, so requesting it runs the rest of the suite
// internally (findings of analyzers not in the request are used only
// to mark waivers live, never reported). Each analyzer still runs at
// most once per Run call.
func Run(pkg *Package, ctx *Context, analyzers []*Analyzer) []Finding {
	waivers := collectWaivers(pkg)
	raw := make(map[*Analyzer][]Finding)
	// rawRun runs one analyzer (memoized), applies waivers to its
	// findings, and marks each consumed waiver used.
	rawRun := func(a *Analyzer) []Finding {
		if fs, ok := raw[a]; ok {
			return fs
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Ctx:      ctx,
		}
		a.Run(pass)
		for i := range pass.findings {
			f := &pass.findings[i]
			if w := waivers.match(f.File, f.Line); w != nil {
				f.Waived, f.Reason = true, w.reason
				w.used = true
			} else if f.anchorLine != 0 {
				if w := waivers.match(f.File, f.anchorLine); w != nil {
					f.Waived, f.Reason = true, w.reason
					w.used = true
				}
			}
		}
		raw[a] = pass.findings
		return pass.findings
	}

	var all []Finding
	auditRequested := false
	for _, a := range analyzers {
		if a == WaiverAudit {
			auditRequested = true
			continue
		}
		all = append(all, rawRun(a)...)
	}
	if auditRequested {
		// Mark waiver usage across the *whole* suite, not just the
		// requested subset: a waiver is live if any analyzer needs it.
		for _, a := range All() {
			if a != WaiverAudit {
				rawRun(a)
			}
		}
		all = append(all, auditWaivers(waivers)...)
	}
	for i := range all {
		all[i].File = ctx.rel(all[i].File)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].ID < all[j].ID
	})
	return all
}

// A waiver is one //swm:ok comment, tracked so the audit can tell live
// waivers (some finding consumed them) from dead ones.
type waiver struct {
	line   int
	col    int
	reason string
	used   bool
}

// waiverSet maps file -> line -> waiver. A waiver on line N covers
// findings on line N (trailing comment) and line N+1 (comment on its
// own line above the offending one).
type waiverSet map[string]map[int]*waiver

// match returns the waiver covering a finding on the given line, or
// nil. The caller marks the returned waiver used.
func (ws waiverSet) match(file string, line int) *waiver {
	lines, ok := ws[file]
	if !ok {
		return nil
	}
	if w, ok := lines[line]; ok {
		return w
	}
	if w, ok := lines[line-1]; ok {
		return w
	}
	return nil
}

const waiverPrefix = "//swm:ok"

func collectWaivers(pkg *Package) waiverSet {
	ws := make(waiverSet)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, waiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, waiverPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// "//swm:okay ..." is some other comment, not a
					// misspelled waiver.
					continue
				}
				reason := strings.TrimSpace(rest)
				if reason == "" {
					// A waiver without a reason is not a waiver: the
					// whole point is that every suppression explains
					// itself.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ws[pos.Filename]
				if lines == nil {
					lines = make(map[int]*waiver)
					ws[pos.Filename] = lines
				}
				lines[pos.Line] = &waiver{line: pos.Line, col: pos.Column, reason: reason}
			}
		}
	}
	return ws
}

// --- shared AST/type helpers --------------------------------------------

// calleeFunc resolves the *types.Func a call statically invokes, or nil
// for calls through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvTypeName returns the name of a method's receiver type ("Conn" for
// func (c *Conn) ...), or "" for plain functions.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// lastResultIsError reports whether f's final result is an error, and
// how many results it has.
func lastResultIsError(f *types.Func) (n int, isErr bool) {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return 0, false
	}
	return res.Len(), isErrorType(res.At(res.Len() - 1).Type())
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// funcDecls yields every function declaration with a body.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
