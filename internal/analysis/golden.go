package analysis

import (
	"encoding/json"
	"fmt"
	"go/scanner"
	"go/token"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// This file is the suite's analysistest-style golden driver, built on
// the stdlib only. A fixture package under testdata/ annotates the
// lines it expects findings on:
//
//	_ = c.MapWindow(id) // want `discarded error`
//
// Each `want` comment carries one or more Go string literals, each a
// regexp that must match the message of one unwaived finding on that
// line. Unexpected findings and unmatched expectations both fail.
// Waived findings (//swm:ok) are exempt from matching and are returned
// to the caller so tests can assert waiver behavior explicitly.

// TestingT is the subset of *testing.T the driver needs.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunGolden loads the fixture package in dir, runs the analyzer, checks
// unwaived findings against `// want` comments, and returns every
// finding (including waived ones) for further assertions.
func RunGolden(t TestingT, l *Loader, a *Analyzer, dir string) []Finding {
	t.Helper()
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", dir, terr)
	}
	findings := Run(pkg, l.Ctx, []*Analyzer{a})

	wants, err := collectWants(pkg, l.Ctx)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}
	matched := make([]bool, len(wants))
	for _, f := range findings {
		if f.Waived {
			continue
		}
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.File || w.line != f.Line {
				continue
			}
			if w.rx.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, a.Name, w.rx)
		}
	}
	return findings
}

type wantSpec struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func collectWants(pkg *Package, ctx *Context) ([]wantSpec, error) {
	var wants []wantSpec
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rel := ctx.rel(pos.Filename)
				exprs, err := scanStringLiterals(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", rel, pos.Line, err)
				}
				for _, e := range exprs {
					rx, err := regexp.Compile(e)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %w", rel, pos.Line, err)
					}
					wants = append(wants, wantSpec{file: rel, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// scanStringLiterals extracts the values of consecutive Go string
// literals ("..." or `...`) from src.
func scanStringLiterals(src string) ([]string, error) {
	var s scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", fset.Base(), len(src))
	var scanErr error
	s.Init(file, []byte(src), func(_ token.Position, msg string) {
		scanErr = fmt.Errorf("bad want expression %q: %s", src, msg)
	}, 0)
	var out []string
	for {
		_, tok, lit := s.Scan()
		if tok == token.EOF || scanErr != nil {
			break
		}
		if tok != token.STRING {
			continue
		}
		v, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want literal %s: %w", lit, err)
		}
		out = append(out, v)
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment %q carries no string literals", src)
	}
	return out, nil
}

// WriteJSON emits findings as a JSON array, the `swmvet -json` format:
// one object per finding with id, analyzer, file, line, col, message,
// waived, and (for waived findings) the reason.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// Summary renders the one-line tally swmvet prints on exit.
func Summary(findings []Finding) string {
	total, waived := 0, 0
	for _, f := range findings {
		if f.Waived {
			waived++
		} else {
			total++
		}
	}
	return fmt.Sprintf("%d finding(s), %d waived", total, waived)
}

// Unwaived counts findings that were not waived.
func Unwaived(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if !f.Waived {
			n++
		}
	}
	return n
}
