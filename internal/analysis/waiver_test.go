package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseOne builds a minimal Package from source, enough for waiver
// collection and a fake analyzer that only needs positions.
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return &Package{
		ImportPath: "example/w",
		Fset:       fset,
		Files:      []*ast.File{f},
		Info:       &types.Info{},
	}
}

// markAnalyzer reports a finding at every identifier named FLAG. For
// the anchored variant it also reports inside every string literal
// containing the byte sequence "boom", anchored at the literal start —
// the multi-line-string shape funcref uses for policy text.
func markAnalyzer(anchored bool) *Analyzer {
	a := &Analyzer{Name: "mark", Doc: "test analyzer"}
	a.Run = func(p *Pass) {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if n.Name == "FLAG" {
						p.Reportf(n.Pos(), "flag", "flagged identifier")
					}
				case *ast.BasicLit:
					if anchored && n.Kind == token.STRING {
						if off := strings.Index(n.Value, "boom"); off >= 0 {
							p.ReportfAnchored(n.Pos()+token.Pos(off), n.Pos(), "boom", "flagged literal content")
						}
					}
				}
				return true
			})
		}
	}
	return a
}

func TestCollectWaivers(t *testing.T) {
	tests := []struct {
		name string
		src  string
		// want maps line -> reason; absent lines must hold no waiver.
		want map[int]string
	}{
		{
			name: "trailing waiver with reason",
			src: `package w
var x = 1 //swm:ok trailing reason
`,
			want: map[int]string{2: "trailing reason"},
		},
		{
			name: "own-line waiver above code",
			src: `package w
//swm:ok standalone reason
var x = 1
`,
			want: map[int]string{2: "standalone reason"},
		},
		{
			name: "bare waiver is not a waiver",
			src: `package w
var x = 1 //swm:ok
`,
			want: map[int]string{},
		},
		{
			name: "bare waiver with only whitespace",
			src: `package w
var x = 1 //swm:ok   ` + `
`,
			want: map[int]string{},
		},
		{
			name: "prefix must match exactly",
			src: `package w
var x = 1 // swm:ok spaced out, ignored
var y = 2 //swm:okay not the marker
`,
			want: map[int]string{},
		},
		{
			name: "multiple waivers keep distinct reasons",
			src: `package w
var x = 1 //swm:ok first
var y = 2
var z = 3 //swm:ok second
`,
			want: map[int]string{2: "first", 4: "second"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := parseOne(t, tt.src)
			ws := collectWaivers(pkg)
			lines := ws["w.go"]
			if len(lines) != len(tt.want) {
				t.Fatalf("collected %d waivers, want %d (%v)", len(lines), len(tt.want), lines)
			}
			for line, reason := range tt.want {
				w, ok := lines[line]
				if !ok {
					t.Errorf("no waiver on line %d", line)
					continue
				}
				if w.reason != reason {
					t.Errorf("line %d reason = %q, want %q", line, w.reason, reason)
				}
				if w.used {
					t.Errorf("line %d waiver born used", line)
				}
			}
		})
	}
}

func TestWaiverSetMatch(t *testing.T) {
	ws := waiverSet{
		"a.go": {10: &waiver{line: 10, reason: "r"}},
	}
	tests := []struct {
		name string
		file string
		line int
		hit  bool
	}{
		{"same line (trailing comment)", "a.go", 10, true},
		{"next line (comment above code)", "a.go", 11, true},
		{"two lines below", "a.go", 12, false},
		{"line above the waiver", "a.go", 9, false},
		{"wrong file", "b.go", 10, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ws.match(tt.file, tt.line); (got != nil) != tt.hit {
				t.Errorf("match(%s, %d) = %v, want hit=%v", tt.file, tt.line, got, tt.hit)
			}
		})
	}
}

// TestRunWaiverApplication drives waivers end-to-end through Run with a
// fake analyzer: placement decides coverage, bare markers waive
// nothing, and consumed waivers stop reporting dead.
func TestRunWaiverApplication(t *testing.T) {
	tests := []struct {
		name       string
		src        string
		wantWaived bool
		wantReason string
	}{
		{
			name: "trailing waiver covers same line",
			src: `package w
var FLAG = 1 //swm:ok same-line coverage
`,
			wantWaived: true,
			wantReason: "same-line coverage",
		},
		{
			name: "waiver above covers next line",
			src: `package w
//swm:ok above-line coverage
var FLAG = 1
`,
			wantWaived: true,
			wantReason: "above-line coverage",
		},
		{
			name: "waiver two lines up misses",
			src: `package w
//swm:ok too far away
var pad = 0
var FLAG = 1
`,
			wantWaived: false,
		},
		{
			name: "waiver below the finding misses",
			src: `package w
var FLAG = 1
//swm:ok waivers do not reach upward
var pad = 0
`,
			wantWaived: false,
		},
		{
			name: "bare marker waives nothing",
			src: `package w
var FLAG = 1 //swm:ok
`,
			wantWaived: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := parseOne(t, tt.src)
			fs := Run(pkg, &Context{}, []*Analyzer{markAnalyzer(false)})
			var found []Finding
			for _, f := range fs {
				if f.ID == "mark.flag" {
					found = append(found, f)
				}
			}
			if len(found) != 1 {
				t.Fatalf("findings = %d, want 1 (%v)", len(found), fs)
			}
			f := found[0]
			if f.Waived != tt.wantWaived {
				t.Errorf("Waived = %v, want %v (%s)", f.Waived, tt.wantWaived, f)
			}
			if f.Reason != tt.wantReason {
				t.Errorf("Reason = %q, want %q", f.Reason, tt.wantReason)
			}
		})
	}
}

// TestRunAnchoredWaiver pins the multi-line-string escape hatch: the
// finding sits on a raw-string content line that cannot carry a
// comment, so the waiver anchors at the literal's opening line instead.
func TestRunAnchoredWaiver(t *testing.T) {
	src := "package w\n\n" +
		"//swm:ok policy text reviewed by hand\n" +
		"var policy = `line one\nline two boom here\nline three`\n"
	pkg := parseOne(t, src)
	fs := Run(pkg, &Context{}, []*Analyzer{markAnalyzer(true)})
	if len(fs) != 1 {
		t.Fatalf("findings = %d, want 1 (%v)", len(fs), fs)
	}
	f := fs[0]
	if f.Line != 5 {
		t.Errorf("finding line = %d, want 5 (inside the literal)", f.Line)
	}
	if !f.Waived || f.Reason != "policy text reviewed by hand" {
		t.Errorf("anchored waiver not applied: %+v", f)
	}

	// The same finding with the waiver on the wrong line — adjacent to
	// the content line, but not to the literal's anchor — stays live.
	srcWrong := "package w\n\n" +
		"var policy = `line one\n//swm:ok not a comment, just string text\nline two boom here\nline three`\n"
	pkgWrong := parseOne(t, srcWrong)
	fsWrong := Run(pkgWrong, &Context{}, []*Analyzer{markAnalyzer(true)})
	if len(fsWrong) != 1 || fsWrong[0].Waived {
		t.Errorf("waiver text inside the literal must not waive: %v", fsWrong)
	}
}

// TestAuditWaivers exercises the dead-waiver report directly: used
// waivers stay silent, unused ones are flagged with their reason.
func TestAuditWaivers(t *testing.T) {
	ws := waiverSet{
		"a.go": {
			3: &waiver{line: 3, col: 2, reason: "live one", used: true},
			9: &waiver{line: 9, col: 4, reason: "dead one"},
		},
	}
	fs := auditWaivers(ws)
	if len(fs) != 1 {
		t.Fatalf("audit findings = %d, want 1 (%v)", len(fs), fs)
	}
	f := fs[0]
	if f.ID != "waiveraudit.dead" || f.File != "a.go" || f.Line != 9 || f.Col != 4 {
		t.Errorf("dead waiver reported at %s, want a.go:9:4 [waiveraudit.dead]", f)
	}
	if !strings.Contains(f.Message, `"dead one"`) {
		t.Errorf("message %q does not quote the reason", f.Message)
	}
	if f.Waived {
		t.Error("audit findings must be unwaivable")
	}
}
