package analysis_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// The loader shells out to `go list -deps -export` once; every test
// shares it (and its parsed registry) through this lazy singleton.
var (
	loadOnce sync.Once
	loader   *analysis.Loader
	loadErr  error
)

func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loadOnce.Do(func() { loader, loadErr = analysis.NewLoader(".") })
	if loadErr != nil {
		t.Fatalf("NewLoader: %v", loadErr)
	}
	return loader
}

// waivedReasons returns the reasons of all waived findings.
func waivedReasons(t *testing.T, findings []analysis.Finding) []string {
	t.Helper()
	var reasons []string
	for _, f := range findings {
		if !f.Waived {
			continue
		}
		if f.Reason == "" {
			t.Errorf("waived finding %s has no reason", f)
		}
		reasons = append(reasons, f.Reason)
	}
	return reasons
}

func TestConnCheckGolden(t *testing.T) {
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.ConnCheck, "testdata/conncheck")
	if got := waivedReasons(t, fs); len(got) != 1 {
		t.Errorf("waived findings = %d, want 1 (%q)", len(got), got)
	}
}

func TestLockOrderGolden(t *testing.T) {
	// Two waivers: the legacy peek escape and the striped Drain escape.
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.LockOrder, "testdata/lockorder")
	if got := waivedReasons(t, fs); len(got) != 2 {
		t.Errorf("waived findings = %d, want 2 (%q)", len(got), got)
	}
}

func TestXIDLifeGolden(t *testing.T) {
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.XIDLife, "testdata/xidlife")
	if got := waivedReasons(t, fs); len(got) != 1 {
		t.Errorf("waived findings = %d, want 1 (%q)", len(got), got)
	}
}

func TestFuncRefGolden(t *testing.T) {
	// The deliberately broken policy fixture: one unknown function, one
	// unknown modifier, one unknown event (see the // want comments),
	// plus a waived line carrying two defects of its own.
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.FuncRef, "testdata/funcref")
	if got := waivedReasons(t, fs); len(got) != 2 {
		t.Errorf("waived findings = %d, want 2 (%q)", len(got), got)
	}
}

func TestCoordGuardGolden(t *testing.T) {
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.CoordGuard, "testdata/coordguard")
	if got := waivedReasons(t, fs); len(got) != 1 {
		t.Errorf("waived findings = %d, want 1 (%q)", len(got), got)
	}
}

func TestAtomicFieldGolden(t *testing.T) {
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.AtomicField, "testdata/atomicfield")
	if got := waivedReasons(t, fs); len(got) != 1 {
		t.Errorf("waived findings = %d, want 1 (%q)", len(got), got)
	}
}

func TestSnapshotImmutGolden(t *testing.T) {
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.SnapshotImmut, "testdata/snapshotimmut")
	if got := waivedReasons(t, fs); len(got) != 1 {
		t.Errorf("waived findings = %d, want 1 (%q)", len(got), got)
	}
}

func TestSeqLockGolden(t *testing.T) {
	// The waived diagnostic reader carries two findings (no re-check,
	// no oddness test) under one waiver.
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.SeqLock, "testdata/seqlock")
	if got := waivedReasons(t, fs); len(got) != 2 {
		t.Errorf("waived findings = %d, want 2 (%q)", len(got), got)
	}
}

func TestWaiverAuditGolden(t *testing.T) {
	// Three dead waivers (one plain, two stacked), none waivable; the
	// live waiver in the fixture must stay unreported.
	fs := analysis.RunGolden(t, sharedLoader(t), analysis.WaiverAudit, "testdata/waiveraudit")
	if got := waivedReasons(t, fs); len(got) != 0 {
		t.Errorf("waived findings = %d, want 0 (%q)", len(got), got)
	}
	dead := 0
	for _, f := range fs {
		if f.ID == "waiveraudit.dead" {
			dead++
		}
	}
	if dead != 3 {
		t.Errorf("dead waivers = %d, want 3", dead)
	}
}

// TestRegistryExtraction pins the registry to the real tables: the
// function names come from internal/core/functions.go and the modifiers
// from internal/bindings/bindings.go, not from a hand-kept copy.
func TestRegistryExtraction(t *testing.T) {
	reg, err := sharedLoader(t).Ctx.Registry()
	if err != nil {
		t.Fatalf("Registry: %v", err)
	}
	for _, fn := range []string{"f.raise", "f.pangoto", "f.quit", "f.nextdesktop"} {
		if !reg.Functions[fn] {
			t.Errorf("Functions[%q] = false, want true", fn)
		}
	}
	if reg.Functions["f.pangotoo"] {
		t.Error(`Functions["f.pangotoo"] = true, want false`)
	}
	for _, m := range []string{"meta", "ctrl", "shift", "any", "mod3"} {
		if !reg.Modifiers[m] {
			t.Errorf("Modifiers[%q] = false, want true", m)
		}
	}
	if reg.Modifiers["mta"] {
		t.Error(`Modifiers["mta"] = true, want false`)
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != len(analysis.All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := analysis.ByName("conncheck, coordguard")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded, want error")
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("WriteJSON(nil) = %q, want []", got)
	}

	buf.Reset()
	fs := []analysis.Finding{{
		Analyzer: "conncheck",
		ID:       "conncheck.discard",
		File:     "a.go",
		Line:     3,
		Col:      2,
		Message:  "discarded error",
		Waived:   true,
		Reason:   "best-effort",
	}}
	if err := analysis.WriteJSON(&buf, fs); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{
		`"id": "conncheck.discard"`,
		`"analyzer": "conncheck"`,
		`"file": "a.go"`,
		`"line": 3`,
		`"waived": true`,
		`"reason": "best-effort"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("WriteJSON output missing %s:\n%s", want, buf.String())
		}
	}
}

// TestRepoIsClean dogfoods the whole suite over the module — the same
// gate the blocking CI job enforces: zero unwaived findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide sweep skipped in -short mode")
	}
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("%s: type error: %v", pkg.ImportPath, terr)
		}
		for _, f := range analysis.Run(pkg, l.Ctx, analysis.All()) {
			if !f.Waived {
				t.Errorf("unwaived finding: %s", f)
			}
		}
	}
}
