package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ConnCheck makes the PR 1 graceful-degradation sweep permanent: no
// error returned by an X request method — on xserver.Conn, xserver.Batch,
// xserver.Cookie, or the icccm helpers built on them — may be silently
// discarded. Errors must be handled, routed into a check helper
// (wm.check and friends take the error as an argument, which this
// analyzer never flags), or waived with //swm:ok and a reason.
//
// Flagged forms:
//
//	conn.MapWindow(w)            // bare call, error dropped
//	_ = conn.MapWindow(w)        // explicit discard
//	p, ok, _ := conn.GetProperty // blank in the error position
//	defer b.Flush()              // deferred call, error dropped
//	go b.Flush()                 // goroutine call, error dropped
var ConnCheck = &Analyzer{
	Name: "conncheck",
	Doc:  "flags discarded errors from xserver.Conn/Batch/Cookie and icccm request methods",
	Run:  runConnCheck,
}

// isRequestAPI reports whether f belongs to the X-request error surface
// conncheck polices, and how many results it returns.
func isRequestAPI(f *types.Func) (nresults int, ok bool) {
	n, isErr := lastResultIsError(f)
	if !isErr {
		return 0, false
	}
	pkg := f.Pkg()
	if pkg == nil {
		return 0, false
	}
	switch recv := recvTypeName(f); {
	case recv != "":
		if !strings.HasSuffix(pkg.Path(), "internal/xserver") {
			return 0, false
		}
		if recv != "Conn" && recv != "Batch" && recv != "Cookie" {
			return 0, false
		}
	default:
		if !strings.HasSuffix(pkg.Path(), "internal/icccm") {
			return 0, false
		}
	}
	return n, true
}

func runConnCheck(p *Pass) {
	flag := func(call *ast.CallExpr) {
		f := calleeFunc(p.Info, call)
		if f == nil {
			return
		}
		if _, ok := isRequestAPI(f); !ok {
			return
		}
		p.Reportf(call.Pos(), "discard",
			"discarded error from %s; handle it, route it through a check helper, or waive with //swm:ok <reason>",
			qualifiedName(f))
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					flag(call)
				}
			case *ast.DeferStmt:
				flag(n.Call)
			case *ast.GoStmt:
				flag(n.Call)
			case *ast.AssignStmt:
				connCheckAssign(p, n, flag)
			}
			return true
		})
	}
}

// connCheckAssign flags assignments that put the blank identifier in a
// request method's error result position.
func connCheckAssign(p *Pass, as *ast.AssignStmt, flag func(*ast.CallExpr)) {
	// Tuple form: a, b, err := call()
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		f := calleeFunc(p.Info, call)
		if f == nil {
			return
		}
		n, ok := isRequestAPI(f)
		if !ok || len(as.Lhs) != n {
			return
		}
		if isBlank(as.Lhs[n-1]) {
			flag(call)
		}
		return
	}
	// Parallel form: _ = call(), possibly among others.
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBlank(as.Lhs[i]) {
				continue
			}
			f := calleeFunc(p.Info, call)
			if f == nil {
				continue
			}
			if n, ok := isRequestAPI(f); ok && n == 1 {
				flag(call)
			}
		}
	}
}

// qualifiedName renders a function for diagnostics: (*xserver.Conn).MapWindow
// or icccm.SetState.
func qualifiedName(f *types.Func) string {
	pkgName := ""
	if f.Pkg() != nil {
		pkgName = f.Pkg().Name()
	}
	if recv := recvTypeName(f); recv != "" {
		return fmt.Sprintf("(*%s.%s).%s", pkgName, recv, f.Name())
	}
	return fmt.Sprintf("%s.%s", pkgName, f.Name())
}
