package analysis_test

import (
	"testing"
	"time"

	"repro/internal/analysis"
)

// sweepWallBudget bounds a full-repo sweep: one shared `go list`
// invocation, type-checking every module package against export data,
// and all nine analyzers. The budget is deliberately loose — it exists
// to catch an accidental return to per-analyzer `go list` round-trips
// (a ~9x regression), not to benchmark the analyzers.
const sweepWallBudget = 120 * time.Second

func TestSweepWallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide sweep skipped in -short mode")
	}
	start := time.Now()
	l := sharedLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	for _, pkg := range pkgs {
		analysis.Run(pkg, l.Ctx, analysis.All())
	}
	if elapsed := time.Since(start); elapsed > sweepWallBudget {
		t.Errorf("full-repo sweep took %v, budget %v — did package loading stop being shared?", elapsed, sweepWallBudget)
	}
}

// BenchmarkRepoSweep measures the analyzers alone: packages are loaded
// and type-checked once outside the timed region, so the number is the
// marginal cost of re-running the suite (what an editor save or a
// waiveraudit pass pays after the loader's memoization warms up).
func BenchmarkRepoSweep(b *testing.B) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		b.Fatalf("Load(./...): %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			analysis.Run(pkg, l.Ctx, analysis.All())
		}
	}
}
