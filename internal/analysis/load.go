package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker diagnostics. Analysis proceeds
	// on a partially-checked package; the driver surfaces these so a
	// broken tree cannot masquerade as a clean one.
	TypeErrors []error
}

// Context is repo-level state shared by all passes: the module root
// (for stable relative paths) and the lazily-extracted f.*/modifier
// registry (see registry.go).
type Context struct {
	ModuleDir string

	registryOnce sync.Once
	registry     *Registry
	registryErr  error
}

// rel makes a file path relative to the module root when possible.
func (c *Context) rel(file string) string {
	if c == nil || c.ModuleDir == "" {
		return file
	}
	if r, err := filepath.Rel(c.ModuleDir, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}

// A Loader parses and type-checks packages of the enclosing module. It
// resolves imports through compiled export data from the go toolchain's
// build cache (`go list -export`), keeping the analyzer itself free of
// non-stdlib dependencies.
//
// The loader is a process-wide cache: the single `go list -deps
// -export` invocation that discovers the module's packages also yields
// their file lists and every dependency's export data, and each
// type-checked package is memoized by import path. Running the full
// analyzer suite, the golden fixtures, and a dogfood sweep in one
// process therefore shells out to the go tool once and type-checks
// each package once, no matter how many analyzers or tests consume it.
type Loader struct {
	Ctx  *Context
	fset *token.FileSet

	listOnce sync.Once
	exports  map[string]string // import path -> export data file
	modPkgs  []listedPkg       // the module's own packages, listing order
	listErr  error
	imp      types.Importer

	mu   sync.Mutex
	pkgs map[string]*Package // import path -> checked package
}

// listedPkg is one `go list` record the loader caches.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// NewLoader creates a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	out, err := goTool(dir, "env", "GOMOD")
	if err != nil {
		return nil, fmt.Errorf("analysis: locating go.mod: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return nil, fmt.Errorf("analysis: %s is not inside a Go module", dir)
	}
	l := &Loader{
		Ctx:  &Context{ModuleDir: filepath.Dir(gomod)},
		fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goTool runs the go command in dir and returns stdout.
func goTool(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}

// loadList runs the one `go list -deps -export` invocation the whole
// process shares: it compiles export data for every dependency via the
// build cache and records the module's own package file lists, so
// Load("./...") never has to shell out again.
func (l *Loader) loadList() error {
	l.listOnce.Do(func() {
		out, err := goTool(l.Ctx.ModuleDir, "list", "-deps", "-export",
			"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard", "./...")
		if err != nil {
			l.listErr = err
			return
		}
		l.exports = make(map[string]string)
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct {
				ImportPath, Dir, Export string
				GoFiles                 []string
				DepOnly, Standard       bool
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				l.listErr = fmt.Errorf("analysis: decoding go list output: %w", err)
				return
			}
			if p.Export != "" {
				l.exports[p.ImportPath] = p.Export
			}
			if !p.DepOnly && !p.Standard {
				l.modPkgs = append(l.modPkgs, listedPkg{
					ImportPath: p.ImportPath, Dir: p.Dir, GoFiles: p.GoFiles,
				})
			}
		}
	})
	return l.listErr
}

func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if err := l.loadList(); err != nil {
		return nil, err
	}
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(file)
}

// Load expands package patterns (e.g. "./...") with `go list` and
// returns the parsed, type-checked packages. Packages with no non-test
// Go files are skipped. testdata directories are excluded by the go
// tool itself, which is what keeps the analyzer fixtures out of the
// repo-wide sweep.
//
// The whole-module pattern "./..." is answered from the cached listing
// (no extra go list run); any pattern set reuses the per-import-path
// type-check memo, so repeated Loads in one process are cheap.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range listed {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.checkCached(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// list resolves patterns to package records, serving "./..." from the
// shared listing and shelling out only for narrower patterns.
func (l *Loader) list(patterns []string) ([]listedPkg, error) {
	wholeModule := len(patterns) == 0 || (len(patterns) == 1 && patterns[0] == "./...")
	if wholeModule {
		if err := l.loadList(); err != nil {
			return nil, err
		}
		return l.modPkgs, nil
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	out, err := goTool(l.Ctx.ModuleDir, args...)
	if err != nil {
		return nil, err
	}
	var listed []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// checkCached type-checks a listed package once per process.
func (l *Loader) checkCached(p listedPkg) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[p.ImportPath]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	l.mu.Unlock()
	var files []string
	for _, f := range p.GoFiles {
		files = append(files, filepath.Join(p.Dir, f))
	}
	pkg, err := l.check(p.ImportPath, p.Dir, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[p.ImportPath] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// LoadDir loads a single directory outside the module's package list —
// used by the golden-test driver to load testdata fixture packages.
// Test files are skipped; fixtures are plain packages. Results are
// memoized like module packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	importPath := "testdata/" + filepath.Base(abs)
	l.mu.Lock()
	if pkg, ok := l.pkgs[importPath]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	l.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, err := l.check(importPath, abs, files)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.pkgs[importPath] = pkg
	l.mu.Unlock()
	return pkg, nil
}

func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error duplicates the first entry of TypeErrors;
	// analysis runs on whatever was successfully checked.
	pkg.Types, _ = conf.Check(importPath, l.fset, files, pkg.Info)
	return pkg, nil
}
