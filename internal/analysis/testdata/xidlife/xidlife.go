// Package xidlife is the golden fixture for the xidlife analyzer: a
// created XID that provably never reaches a destroy path, a tracked
// structure, a return, or another call is a leak.
package xidlife

import (
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// tracker stands in for the WM structs that keep created windows
// reachable for later destruction.
type tracker struct {
	frames []xproto.XID
}

// leak drops every reference to the XIDs it creates.
func leak(c *xserver.Conn, root xproto.XID, r xproto.Rect) {
	c.CreateWindow(root, r, 0, xserver.WindowAttributes{})            // want "result of .*CreateWindow is discarded"
	_, _ = c.CreateWindow(root, r, 0, xserver.WindowAttributes{})     // want "assigned to _"
	id, err := c.CreateWindow(root, r, 0, xserver.WindowAttributes{}) // want "stored in .id. but never reaches"
	if err != nil || id == xproto.None {
		return
	}
}

// allocID mimics the raw XID allocator: its name marks it a creator.
func allocID() xproto.XID { return 1 }

// dropRaw burns an allocated XID without ever using it.
func dropRaw() {
	allocID() // want "result of .*allocID is discarded"
}

// tracked stores or destroys everything it creates.
func tracked(c *xserver.Conn, t *tracker, root xproto.XID, r xproto.Rect) error {
	id, err := c.CreateWindow(root, r, 0, xserver.WindowAttributes{})
	if err != nil {
		return err
	}
	t.frames = append(t.frames, id) // escapes into the tracked slice

	tmp, err := c.CreateWindow(root, r, 0, xserver.WindowAttributes{})
	if err != nil {
		return err
	}
	return c.DestroyWindow(tmp) // escapes into the destroy path
}

// forwarded hands the fresh XID straight to its caller.
func forwarded(c *xserver.Conn, root xproto.XID, r xproto.Rect) (xproto.XID, error) {
	return c.CreateWindow(root, r, 0, xserver.WindowAttributes{})
}

// splash is a deliberate fire-and-forget window.
func splash(c *xserver.Conn, root xproto.XID, r xproto.Rect) {
	c.CreateWindow(root, r, 0, xserver.WindowAttributes{}) //swm:ok fixture: the splash window lives until server reset by design
}
