// Package funcref is the golden fixture for the funcref analyzer: a
// deliberately broken policy resource next to a correct one, proving
// the analyzer catches each defect class — unknown function, unknown
// modifier, unknown event type — that would otherwise be a silent
// no-op at runtime.
package funcref

// broken carries one specific defect per binding line.
var broken = []string{
	`swm.bindings: meta <Btn1Down> root : f.pangotoo "office"`, // want "unknown window manager function"
	`swm.bindings: mta <Btn2Down> window : f.raise`,            // want "unknown binding modifier"
	`swm.bindings: meta <Btn9Down> root : f.lower`,             // want "unknown binding event type"
}

// clean bindings and prose pass: registered functions, registered
// modifiers, events the bindings parser accepts, and "f." used as a
// plain prefix in prose.
var clean = []string{
	`swm.bindings: meta <Btn1Down> root : f.pangoto "office"`,
	`any <Key>q : f.quit`,
	`shift ctrl <Btn3Up> title : f.zoom`,
	`the f. prefix marks window manager functions`,
}

// experimental is waived: both its modifier and its function exist only
// in a hypothetical downstream build.
var experimental = `exp <Btn1Down> root : f.teleport` //swm:ok fixture: a downstream build registers exp and f.teleport
