// Package seqlock is the golden fixture for the seqlock analyzer:
// writers must make odd/even sequence transitions around the critical
// section (latch via CAS to odd, release back to even), readers must
// reject odd sequences, re-check after reading, and not retain
// pointers into the protected region.
package seqlock

import "sync/atomic"

type cell struct {
	seq atomic.Uint32
	a   atomic.Uint64
	b   atomic.Uint64
	ext []byte
}

// latch is the sanctioned helper shape: the pre-latch sequence escapes
// by return, so the caller releases.
func (c *cell) latch() (uint32, bool) {
	s := c.seq.Load()
	if s&1 != 0 || !c.seq.CompareAndSwap(s, s+1) {
		return 0, false
	}
	return s, true
}

// goodWrite is a conforming writer: latch, mutate, publish even.
func (c *cell) goodWrite(a, b uint64) bool {
	s, ok := c.latch()
	if !ok {
		return false
	}
	c.a.Store(a)
	c.b.Store(b)
	c.seq.Store(s + 2)
	return true
}

// badLatchParity keeps the sequence even across the latch, so readers
// cannot tell a writer is mid-update.
func (c *cell) badLatchParity(v uint64) bool {
	s := c.seq.Load()
	if s&1 != 0 || !c.seq.CompareAndSwap(s, s+2) { // want `even delta`
		return false
	}
	c.a.Store(v)
	c.seq.Store(s + 2)
	return true
}

// badOddRelease leaves the sequence odd after the write, spinning
// every future reader.
func (c *cell) badOddRelease(v uint64) bool {
	s, ok := c.latch()
	if !ok {
		return false
	}
	c.a.Store(v)
	c.seq.Store(s + 1) // want `odd delta`
	return true
}

// badUnreleased latches and forgets to release; the pre-latch sequence
// dies with the function.
func (c *cell) badUnreleased(v uint64) {
	s := c.seq.Load()
	if s&1 != 0 || !c.seq.CompareAndSwap(s, s+1) { // want `never released`
		return
	}
	c.a.Store(v)
}

// goodRead is the canonical retry-loop reader.
func (c *cell) goodRead() (uint64, uint64) {
	for {
		s := c.seq.Load()
		if s&1 != 0 {
			continue
		}
		a := c.a.Load()
		b := c.b.Load()
		if c.seq.Load() == s {
			return a, b
		}
	}
}

// badReadNoRecheck trusts a single sequence load.
func (c *cell) badReadNoRecheck() uint64 {
	s := c.seq.Load() // want `never compares a re-loaded sequence`
	if s&1 != 0 {
		return 0
	}
	return c.a.Load()
}

// badReadNoOddCheck re-checks but accepts torn mid-write snapshots.
func (c *cell) badReadNoOddCheck() uint64 {
	for {
		s := c.seq.Load() // want `never tests .* for oddness`
		v := c.a.Load()
		if c.seq.Load() == s {
			return v
		}
	}
}

// badRetain carries a pointer into the protected region out of the
// re-checked window.
func (c *cell) badRetain() *[]byte {
	for {
		s := c.seq.Load()
		if s&1 != 0 {
			continue
		}
		p := &c.ext // want `takes the address of protected field`
		if c.seq.Load() == s {
			return p
		}
	}
}

// waivedReader documents a tolerated torn read; the waiver covers both
// the missing re-check and the missing oddness test.
func (c *cell) waivedReader() uint64 {
	//swm:ok fixture: diagnostic probe tolerates a torn read
	s := c.seq.Load()
	_ = s
	return c.a.Load()
}
