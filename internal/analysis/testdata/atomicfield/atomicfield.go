// Package atomicfield is the golden fixture for the atomicfield
// analyzer: a field is either atomic or plain, never both. Mixed
// sync/atomic + plain access and atomic-typed fields copied as values
// are findings; method access, address-taking for the atomic functions
// themselves, and constructor initialization are clean.
package atomicfield

import "sync/atomic"

// counter mixes sync/atomic package functions with plain access.
type counter struct {
	hits int64
	cold int64
}

func newCounter(seed int64) *counter {
	c := &counter{}
	c.hits = seed // constructor: nothing shared yet, clean
	return c
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) loadOK() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) read() int64 {
	return c.hits // want `accessed atomically .* but read or written plainly`
}

func (c *counter) coldPath() int64 {
	return c.cold // plain-only field: clean
}

// gauge holds a sync/atomic value type; methods are the only legal use.
type gauge struct {
	n     atomic.Uint64
	cells [3]atomic.Uint32
}

func (g *gauge) snapshotOK() uint64 {
	return g.n.Load()
}

func (g *gauge) cellOK(i int) uint32 {
	return g.cells[i].Load()
}

func (g *gauge) copyBad() atomic.Uint64 {
	return g.n // want `used as a plain value`
}

func (g *gauge) waivedCopy() uint64 {
	//swm:ok fixture: frozen value copied for a single-threaded report
	v := g.n
	return v.Load()
}
