// Package waiveraudit is the golden fixture for the waiveraudit
// analyzer: a //swm:ok waiver is live while some analyzer finding
// consumes it, and dead — reported for deletion — once nothing does.
// Audit findings are generated after waiver matching, so they cannot
// themselves be waived: stacking a waiver on a dead waiver just makes
// two dead waivers.
package waiveraudit

import "sync/atomic"

type counter struct {
	hits int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// read carries a live waiver: the plain read below is a real
// atomicfield.mixed finding, so the waiver pays its way and the audit
// stays silent about it.
func (c *counter) read() int64 {
	//swm:ok fixture: torn read acceptable in this one-shot report
	return c.hits
}

// idle carries a dead waiver: nothing it covers produces a finding.
func (c *counter) idle() int64 {
	//swm:ok fixture: stale explanation for code long since fixed // want `suppresses no finding`
	return 42
}

// stacked proves unwaivability: the second waiver tries to cover the
// first one's dead-waiver finding, and both report dead.
func (c *counter) stacked() int64 {
	//swm:ok fixture: attempt to waive the audit finding below // want `suppresses no finding`
	//swm:ok fixture: this waiver is itself dead // want `suppresses no finding`
	return 7
}
