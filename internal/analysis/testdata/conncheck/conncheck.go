// Package conncheck is the golden fixture for the conncheck analyzer:
// every form of discarded X request error is a finding, while handled,
// routed, propagated, and waived calls are clean.
package conncheck

import (
	"repro/internal/icccm"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// bad discards request errors in each flagged form.
func bad(c *xserver.Conn, win xproto.XID) {
	c.MapWindow(win)         // want "discarded error from .*MapWindow"
	_ = c.RaiseWindow(win)   // want "discarded error from .*RaiseWindow"
	defer c.UnmapWindow(win) // want "discarded error from .*UnmapWindow"
	go c.LowerWindow(win)    // want "discarded error from .*LowerWindow"

	g, _ := c.GetGeometry(win) // want "discarded error from .*GetGeometry"
	_ = g

	icccm.SetState(c, win, icccm.State{State: xproto.NormalState}) // want "discarded error from icccm.SetState"
}

// good handles, routes, or propagates every request error.
func good(c *xserver.Conn, win xproto.XID) error {
	if err := c.MapWindow(win); err != nil {
		return err
	}
	check("raise", c.RaiseWindow(win))
	return c.LowerWindow(win)
}

// check is the routing pattern conncheck recognizes by construction:
// the request call is an argument, not a statement.
func check(op string, err error) bool {
	_ = op
	return err == nil
}

// waived fires and forgets under an explicit reason.
func waived(c *xserver.Conn, win xproto.XID) {
	c.UnmapWindow(win) //swm:ok fixture: unmapping a dying window is best-effort
}

// instrument mirrors an obs recording hook: no error return, nothing
// to discard.
type instrument interface {
	Request(major string)
}

// instrumented mirrors the observability instrument points: recording
// calls return nothing, so bracketing a properly handled request with
// them must add no findings.
func instrumented(c *xserver.Conn, win xproto.XID, in instrument) error {
	if in != nil {
		in.Request("MapWindow")
	}
	err := c.MapWindow(win)
	check("map", err)
	return err
}

// serveReply mirrors the property transport's reply write: the
// ChangeProperty that acknowledges a swmproto request. Dropping its
// error loses the reply silently — the client polls forever — so the
// discard is a finding even though the call "is just a property write".
func serveReply(c *xserver.Conn, win xproto.XID, payload []byte) {
	c.ChangeProperty(win, c.InternAtom("SWM_REPLY"), c.InternAtom("STRING"), 8, xproto.PropModeReplace, payload) // want "discarded error from .*ChangeProperty"
}

// serveReplyRouted is the clean transport shape: the reply write's
// error is routed into a degrade counter, as core.sendReply does.
func serveReplyRouted(c *xserver.Conn, win xproto.XID, payload []byte) {
	check("write SWM_REPLY", c.ChangeProperty(win, c.InternAtom("SWM_REPLY"),
		c.InternAtom("STRING"), 8, xproto.PropModeReplace, payload))
}

// typedGetter exercises the icccm accessor contract: the (value, ok,
// error) triple is clean when the error is routed, a finding when the
// blank identifier swallows it.
func typedGetter(c *xserver.Conn, win xproto.XID) string {
	name, ok, err := icccm.GetName(c, win)
	check("read WM_NAME", err)
	if !ok {
		return ""
	}
	return name
}
