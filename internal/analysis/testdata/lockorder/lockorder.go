// Package lockorder is the golden fixture for the lockorder analyzer:
// re-entrant acquisition of Server.mu — directly, transitively, or from
// a *Locked helper — is a finding; the lock-once-then-*Locked shape and
// release-before-call are clean.
package lockorder

import "sync"

// Server mirrors the xserver locking shape: one mu guarding the state,
// public methods that take it, *Locked helpers that must not.
type Server struct {
	mu    sync.RWMutex
	items map[int]int
	in    Instrument
}

// Instrument mirrors the xserver instrument hook (internal/obs): a
// callback the server invokes while holding mu. Implementations touch
// only their own leaf state, so the analyzer must treat the dynamic
// call as clean rather than assuming it can re-enter the lock.
type Instrument interface {
	Note(k int)
}

// Get takes the read lock; calling it with mu held deadlocks.
func (s *Server) Get(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// Sum re-enters through Get while still holding the lock.
func (s *Server) Sum(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Get(k) + 1 // want "Sum calls Get while holding the lock"
}

// helper does not lock itself but calls Get, so it may acquire.
func (s *Server) helper(k int) int { return s.Get(k) }

// Walk re-enters transitively through helper.
func (s *Server) Walk(k int) int {
	s.mu.Lock()
	v := s.helper(k) // want "Walk calls helper while holding the lock"
	s.mu.Unlock()
	return v
}

// putLocked violates its own naming contract by acquiring.
func (s *Server) putLocked(k, v int) {
	s.mu.Lock() // want "putLocked .* acquires the lock itself"
	s.items[k] = v
	s.mu.Unlock()
}

// sizeLocked calls a locking method from a lock-held context.
func (s *Server) sizeLocked() int {
	return s.Get(0) // want "sizeLocked .* calls Get, which acquires the lock"
}

// Observe is the instrument-point shape: the callback fires with the
// lock held (shared here, exclusive elsewhere) — clean, like the
// faultLocked instrument gate in internal/xserver.
func (s *Server) Observe(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.in != nil {
		s.in.Note(k)
	}
	return s.items[k]
}

// noteLocked shows the same hook from a *Locked helper: dispatching to
// the instrument does not acquire, so the helper keeps its contract.
func (s *Server) noteLocked(k int) {
	if s.in != nil {
		s.in.Note(k)
	}
	s.items[k]++
}

// Put is the clean discipline: lock once, work through *Locked helpers.
func (s *Server) Put(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeLocked(k, v)
}

func (s *Server) storeLocked(k, v int) { s.items[k] = v }

// Reload releases before calling a locking method: clean.
func (s *Server) Reload(k int) int {
	s.mu.Lock()
	s.items = map[int]int{}
	s.mu.Unlock()
	return s.Get(k)
}

// Recheck escapes the discipline deliberately, under a waiver.
func (s *Server) Recheck(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peek(k) //swm:ok fixture: peek switches to its own lock-free path when mu is held
}

func (s *Server) peek(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// Serve mirrors the transport dispatch seam (swmhttp → fleet →
// handler): copy what the lock guards, release, then dispatch — the
// handler is free to re-enter locking methods.
func (s *Server) Serve(k int) int {
	s.mu.Lock()
	v := s.items[k]
	s.mu.Unlock()
	return v + s.Get(k)
}

// ServeHeld dispatches the handler with the lock still held — the
// transport bug the seam exists to prevent: a handler that re-enters
// Get deadlocks every request behind it.
func (s *Server) ServeHeld(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatch(k) // want "ServeHeld calls dispatch while holding the lock"
}

// dispatch stands in for a protocol handler: it may acquire through Get.
func (s *Server) dispatch(k int) int { return s.Get(k) }

// Refresh spawns a worker while holding the lock — the adopt-sweep
// shape. The goroutine does not inherit the hold, so its locking calls
// are clean, and they do not make Refresh itself "acquiring" from its
// callers' point of view.
func (s *Server) Refresh(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = 0
	go func() {
		s.Put(k, s.Get(k)+1)
	}()
	go s.Get(k)
}

// RefreshAll shows the spawner stays non-acquiring: calling it with the
// lock held is clean because only its goroutines lock.
func (s *Server) RefreshAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.items {
		s.refreshOne(k)
	}
}

func (s *Server) refreshOne(k int) {
	go func() {
		s.Put(k, 0)
	}()
}

// Prefetch's goroutine is its own context: it starts unheld, may take
// the lock itself, and then the usual re-entrancy rules apply inside.
func (s *Server) Prefetch(k int) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.storeLocked(k, 1) // clean: this goroutine holds the lock
		_ = s.Get(k)        // want `Prefetch.func1 calls Get while holding the lock`
	}()
}

// Sweep calls a *Locked helper from a goroutine that never locked —
// the spawner's hold does not carry over.
func (s *Server) Sweep(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.storeLocked(k, 2) // want `Sweep.func1 runs on a spawned goroutine, which does not inherit the spawner's lock, but calls storeLocked`
	}()
}

// Kick shows the direct-call spawn form of the same bug.
func (s *Server) Kick(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.storeLocked(k, 3) // want `Kick.func1 runs on a spawned goroutine, which does not inherit the spawner's lock, but calls storeLocked`
}
