// Package lockorder is the golden fixture for the lockorder analyzer:
// re-entrant acquisition of Server.mu — directly, transitively, or from
// a *Locked helper — is a finding; the lock-once-then-*Locked shape and
// release-before-call are clean.
package lockorder

import "sync"

// Server mirrors the xserver locking shape: one mu guarding the state,
// public methods that take it, *Locked helpers that must not.
type Server struct {
	mu    sync.RWMutex
	items map[int]int
}

// Get takes the read lock; calling it with mu held deadlocks.
func (s *Server) Get(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}

// Sum re-enters through Get while still holding the lock.
func (s *Server) Sum(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Get(k) + 1 // want "Sum calls Get while holding the lock"
}

// helper does not lock itself but calls Get, so it may acquire.
func (s *Server) helper(k int) int { return s.Get(k) }

// Walk re-enters transitively through helper.
func (s *Server) Walk(k int) int {
	s.mu.Lock()
	v := s.helper(k) // want "Walk calls helper while holding the lock"
	s.mu.Unlock()
	return v
}

// putLocked violates its own naming contract by acquiring.
func (s *Server) putLocked(k, v int) {
	s.mu.Lock() // want "putLocked .* acquires the lock itself"
	s.items[k] = v
	s.mu.Unlock()
}

// sizeLocked calls a locking method from a lock-held context.
func (s *Server) sizeLocked() int {
	return s.Get(0) // want "sizeLocked .* calls Get, which acquires the lock"
}

// Put is the clean discipline: lock once, work through *Locked helpers.
func (s *Server) Put(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeLocked(k, v)
}

func (s *Server) storeLocked(k, v int) { s.items[k] = v }

// Reload releases before calling a locking method: clean.
func (s *Server) Reload(k int) int {
	s.mu.Lock()
	s.items = map[int]int{}
	s.mu.Unlock()
	return s.Get(k)
}

// Recheck escapes the discipline deliberately, under a waiver.
func (s *Server) Recheck(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peek(k) //swm:ok fixture: peek switches to its own lock-free path when mu is held
}

func (s *Server) peek(k int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items[k]
}
