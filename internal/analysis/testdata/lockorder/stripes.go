package lockorder

import "sync"

// stripe mirrors internal/xserver.stripe: one shard of a striped lock.
// Direct stripe.mu operations are legal only in this file — the
// doorways below are the sanctioned way in, and the analyzer exempts
// the file implementing the discipline from the checks it enforces on
// everyone else.
type stripe struct {
	mu sync.RWMutex
}

// Striped mirrors the striped xserver shape: a server lock above a
// fixed array of stripes, public methods that take the server lock
// shared and then the touched stripes through the doorways.
type Striped struct {
	mu      sync.RWMutex
	stripes [4]stripe
	items   map[int]int
}

func (s *Striped) stripeFor(id int) *stripe { return &s.stripes[id&3] }

// lockStripe is the single-stripe doorway.
func (s *Striped) lockStripe(id int) *stripe {
	st := s.stripeFor(id)
	st.mu.Lock()
	return st
}

func (s *Striped) unlockStripe(st *stripe) { st.mu.Unlock() }

// lockStripes2 is the two-stripe doorway: ascending index order, second
// result nil when both ids land on the same stripe.
func (s *Striped) lockStripes2(a, b int) (*stripe, *stripe) {
	i, j := a&3, b&3
	if i == j {
		return s.lockStripe(a), nil
	}
	if j < i {
		i, j = j, i
	}
	s.stripes[i].mu.Lock()
	s.stripes[j].mu.Lock()
	return &s.stripes[i], &s.stripes[j]
}

func (s *Striped) unlockStripes2(s1, s2 *stripe) {
	if s2 != nil {
		s2.mu.Unlock()
	}
	s1.mu.Unlock()
}
