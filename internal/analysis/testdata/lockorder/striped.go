package lockorder

// Fixtures for the stripe half of the lockorder analyzer: the clean
// ascending doorway shapes, nested and misordered stripe acquisition,
// hierarchy inversion (server lock under a stripe), doorway bypass,
// and a deliberate waived escape.

// MoveOne is the sanctioned single-stripe shape: server lock shared,
// one stripe through the doorway. Clean.
func (s *Striped) MoveOne(id int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.lockStripe(id)
	s.items[id]++
	s.unlockStripe(st)
}

// MovePair needs two stripes and goes through the ascending two-stripe
// doorway. Clean.
func (s *Striped) MovePair(a, b int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s1, s2 := s.lockStripes2(a, b)
	s.items[a], s.items[b] = s.items[b], s.items[a]
	s.unlockStripes2(s1, s2)
}

// MoveBoth takes its two stripes one doorway call at a time — the
// acquisition order then depends on argument order, which deadlocks
// against an ascending taker (the true-positive stripe-order bug).
func (s *Striped) MoveBoth(a, b int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s1 := s.lockStripe(a)
	s2 := s.lockStripe(b) // want `MoveBoth acquires a second stripe while holding one`
	s.items[a], s.items[b] = s.items[b], s.items[a]
	s.unlockStripe(s2)
	s.unlockStripe(s1)
}

// bump takes a stripe but not the server lock, so calling it is a pure
// stripe acquisition from its callers' point of view.
func (s *Striped) bump(id int) {
	st := s.lockStripe(id)
	s.items[id]++
	s.unlockStripe(st)
}

// Renest re-enters the stripes transitively: bump's stripe may be the
// one already held (stripeFor is dynamic), a self-deadlock.
func (s *Striped) Renest(id int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.lockStripe(id)
	s.bump(id + 1) // want `Renest calls bump while holding a stripe`
	s.unlockStripe(st)
}

// size takes the server lock; it must be called before any stripe.
func (s *Striped) size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Audit inverts the hierarchy: stripe first, then a call that acquires
// the server lock above it.
func (s *Striped) Audit(id int) int {
	st := s.lockStripe(id)
	n := s.size() // want `Audit calls size, which acquires the server lock, while holding a stripe`
	s.unlockStripe(st)
	return n
}

// Poke bypasses the doorways with a raw stripe-lock operation.
func (s *Striped) Poke(id int) {
	st := s.stripeFor(id)
	st.mu.Lock() // want `Poke performs a direct stripe lock operation outside stripes.go`
	s.items[id]++
	st.mu.Unlock()
}

// applyLocked runs under the exclusive server lock, which already owns
// every stripe; taking one again breaks the helper contract.
func (s *Striped) applyLocked(id int) {
	st := s.lockStripe(id) // want `applyLocked follows the \*Locked convention .* but acquires a stripe`
	s.items[id]++
	s.unlockStripe(st)
}

// Apply gives applyLocked its caller so the fixture package compiles
// without dead code warnings and shows the intended exclusive shape.
func (s *Striped) Apply(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLocked(id)
}

// Drain holds two stripes outside the doorway on a shutdown path where
// no concurrent taker can exist — the deliberate, waived escape.
func (s *Striped) Drain() {
	s1 := s.lockStripe(0)
	s2 := s.lockStripe(1) //swm:ok fixture: shutdown path, no concurrent stripe takers
	s.items = nil
	s.unlockStripe(s2)
	s.unlockStripe(s1)
}
