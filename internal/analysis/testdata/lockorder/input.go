// input.go pins the lower half of the lock hierarchy end to end:
// Server.mu > stripes > inputMu > Conn.qMu/errMu. Descending the chain
// is clean; acquiring upward from a leaf, holding both unordered leaf
// locks, or re-entering a leaf through a call are findings.

package lockorder

import "sync"

// InputServer models the input-dispatch tier: the server lock above,
// the inputMu serializing device events below it.
type InputServer struct {
	mu      sync.RWMutex
	inputMu sync.Mutex
}

// FixConn models the per-connection leaf tier: qMu guards the event
// queue, errMu the error queue, and the two are unordered peers.
type FixConn struct {
	qMu   sync.Mutex
	errMu sync.Mutex
	q     []int
	errs  []int
}

// enqueue is the sanctioned leaf shape: qMu guards only the append.
func (c *FixConn) enqueue(v int) {
	c.qMu.Lock()
	c.q = append(c.q, v)
	c.qMu.Unlock()
}

// pushErr is the other leaf, same shape.
func (c *FixConn) pushErr(v int) {
	c.errMu.Lock()
	c.errs = append(c.errs, v)
	c.errMu.Unlock()
}

// Motion descends legally: inputMu above the connection leaf.
func (s *InputServer) Motion(c *FixConn, v int) {
	s.inputMu.Lock()
	defer s.inputMu.Unlock()
	c.enqueue(v)
}

// Dispatch descends the whole chain legally: server read lock, then
// inputMu, then the leaf through enqueue.
func (s *InputServer) Dispatch(c *FixConn, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.inputMu.Lock()
	defer s.inputMu.Unlock()
	c.enqueue(v)
}

// DrainNotify inverts the input edge: the leaf is held when inputMu is
// taken.
func (c *FixConn) DrainNotify(s *InputServer) {
	c.qMu.Lock()
	defer c.qMu.Unlock()
	s.inputMu.Lock() // want `acquires inputMu while holding qMu`
	s.inputMu.Unlock()
}

// Requeue re-enters the leaf through a call while holding it.
func (c *FixConn) Requeue(v int) {
	c.qMu.Lock()
	defer c.qMu.Unlock()
	c.enqueue(v) // want `re-acquires it \(sync.Mutex is not re-entrant\)`
}

// CrossLeaf holds both unordered leaf locks at once.
func (c *FixConn) CrossLeaf() {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	c.qMu.Lock() // want `the connection leaf locks are unordered peers`
	c.q = nil
	c.qMu.Unlock()
}

// PumpInput ascends from the leaf all the way to the server lock.
func (c *FixConn) PumpInput(s *InputServer) {
	c.qMu.Lock()
	s.mu.Lock() // want `acquires the server lock while holding qMu`
	s.mu.Unlock()
	c.qMu.Unlock()
}
