// Package coordguard is the golden fixture for the coordguard
// analyzer: raw arithmetic stored into desktop coordinate fields is a
// finding; writes routed through a clamp call, in-range constants, and
// waived sites are clean.
package coordguard

// Screen mirrors core.Screen's desktop coordinate fields.
type Screen struct {
	PanX, PanY         int
	DesktopW, DesktopH int
	Width, Height      int
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// bad stores raw arithmetic into desktop coordinates.
func bad(scr *Screen, dx, dy int) {
	scr.PanX = scr.PanX + dx // want "raw arithmetic stored into desktop coordinate PanX"
	scr.PanY += dy           // want "compound assignment to desktop coordinate PanY"
	scr.DesktopW++           // want "increment of desktop coordinate DesktopW"
}

// badInit computes desktop sizes in a composite literal; the second
// field is a compile-time constant past the 32767 wire limit.
func badInit(w int) Screen {
	return Screen{
		DesktopW: w * 4, // want "raw arithmetic initializes desktop coordinate DesktopW"
		DesktopH: 40000, // want "raw arithmetic initializes desktop coordinate DesktopH"
	}
}

// good routes every write through the clamp doorway or stores
// in-range constants.
func good(scr *Screen, dx int) {
	scr.PanX = clamp(scr.PanX+dx, 0, scr.DesktopW-scr.Width)
	scr.PanY = 0
	scr.PanX = -1 // the "force PanTo to reposition" sentinel
	scr.DesktopH = clamp(scr.DesktopH, scr.Height, 32767)
	_ = Screen{DesktopW: 32767}
}

// waived bypasses the clamp with an explicit reason.
func waived(scr *Screen, dy int) {
	scr.PanY = scr.PanY + dy //swm:ok fixture: the caller pre-validates dy against the desktop bounds
}
