// Package snapshotimmut is the golden fixture for the snapshotimmut
// analyzer: memory published through an atomic.Pointer Store or
// CompareAndSwap is frozen. Writes through a loaded snapshot are
// findings; the clone-mutate-publish loop and the cyclic builder idiom
// (the xrdb trie compiler's shape) are clean.
package snapshotimmut

import "sync/atomic"

type snap struct {
	items []int
	name  string
}

type holder struct {
	cur atomic.Pointer[snap]
}

// mutateLoaded writes through a loaded snapshot: both writes flagged.
func (h *holder) mutateLoaded(v int) {
	s := h.cur.Load()
	s.items[0] = v   // want `published memory is frozen`
	s.name = "dirty" // want `published memory is frozen`
}

// replaceCloned is the sanctioned clone-mutate-publish loop.
func (h *holder) replaceCloned(v int) {
	for {
		old := h.cur.Load()
		ns := &snap{name: "clean"}
		if old != nil {
			ns.items = append([]int(nil), old.items...)
		}
		if len(ns.items) > 0 {
			ns.items[0] = v
		}
		if h.cur.CompareAndSwap(old, ns) {
			return
		}
	}
}

// node/reg mimic the xrdb trie compiler: a cyclic builder chain
// (cur = next drawn from cur's own subtree) stays fresh until the
// final Store publishes the root.
type node struct {
	kids map[string]*node
	hits int
}

type reg struct {
	root atomic.Pointer[node]
}

func (r *reg) rebuild(keys []string) {
	root := &node{kids: map[string]*node{}}
	cur := root
	for _, k := range keys {
		m := &cur.kids
		next := (*m)[k]
		if next == nil {
			next = &node{kids: map[string]*node{}}
			(*m)[k] = next
		}
		cur = next
		cur.hits++
	}
	r.root.Store(root)
}

// appendPast is the documented append-only exception, waived.
func (h *holder) appendPast(v int) {
	s := h.cur.Load()
	if s == nil {
		return
	}
	//swm:ok fixture: append-only write past the published length
	s.items = append(s.items, v)
}

// payload/cacheSlot mimic the fleet query cache: a generation-tagged
// pre-rendered body published behind an atomic.Pointer. Publishing a
// fresh composite literal whose body came from a render call is the
// sanctioned shape; the analyzer must not demand a clone of bytes
// nothing else aliases.
type payload struct {
	gen  uint64
	body []byte
}

type cacheSlot struct {
	cur atomic.Pointer[payload]
}

func render(gen uint64) []byte { return []byte{byte(gen)} }

// publishFresh is the cache's store path: fresh allocation, fresh
// bytes, no writes after Store. Clean.
func (c *cacheSlot) publishFresh(gen uint64) {
	c.cur.Store(&payload{gen: gen, body: render(gen)})
}

// serveCached reads the published payload without writing it. Clean.
func (c *cacheSlot) serveCached(gen uint64) []byte {
	if p := c.cur.Load(); p != nil && p.gen == gen {
		return p.body
	}
	return nil
}

// scribbleCached mutates a served payload in place — the bug the cache
// contract forbids: every reader of the cached bytes would see the
// edit.
func (c *cacheSlot) scribbleCached() {
	p := c.cur.Load()
	if p == nil {
		return
	}
	p.body[0] = '!' // want `published memory is frozen`
	p.gen++         // want `published memory is frozen`
}
