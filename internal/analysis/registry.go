package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// Registry is the repo's declarative vocabulary, extracted from source
// rather than duplicated by hand: the window-manager function table
// from internal/core/functions.go and the binding modifier table from
// internal/bindings/bindings.go. The funcref analyzer cross-checks
// every policy string literal against it, so the two can never drift
// apart — adding an f.* function to the table is all it takes for
// swmvet to accept it.
type Registry struct {
	// Functions holds valid window-manager function names ("f.raise"),
	// lowercased, exactly as registered in core's function table.
	Functions map[string]bool
	// Modifiers holds valid binding modifier names ("meta", "ctrl", ...)
	// plus "any", lowercased.
	Modifiers map[string]bool
}

// Registry returns the module's extracted registry, loading it on first
// use. It returns nil (and the load error) when the module does not
// carry the swm tables — funcref then has nothing to check against.
func (c *Context) Registry() (*Registry, error) {
	c.registryOnce.Do(func() {
		c.registry, c.registryErr = loadRegistry(c.ModuleDir)
	})
	return c.registry, c.registryErr
}

func loadRegistry(moduleDir string) (*Registry, error) {
	r := &Registry{
		Functions: make(map[string]bool),
		Modifiers: map[string]bool{"any": true},
	}
	fset := token.NewFileSet()

	funcsFile := filepath.Join(moduleDir, "internal", "core", "functions.go")
	f, err := parser.ParseFile(fset, funcsFile, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("analysis: loading f.* registry: %w", err)
	}
	// Every `"f.name": impl` key of a map composite literal in
	// functions.go is a registered function. The only such literal is
	// the table in registerFunctions.
	ast.Inspect(f, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.HasPrefix(s, "f.") {
				r.Functions[strings.ToLower(s)] = true
			}
		}
		return true
	})
	if len(r.Functions) == 0 {
		return nil, fmt.Errorf("analysis: no f.* entries found in %s", funcsFile)
	}

	bindingsFile := filepath.Join(moduleDir, "internal", "bindings", "bindings.go")
	bf, err := parser.ParseFile(fset, bindingsFile, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("analysis: loading modifier registry: %w", err)
	}
	ast.Inspect(bf, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range vs.Names {
			if name.Name != "modifierNames" || i >= len(vs.Values) {
				continue
			}
			lit, ok := vs.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.BasicLit); ok && key.Kind == token.STRING {
					if s, err := strconv.Unquote(key.Value); err == nil {
						r.Modifiers[strings.ToLower(s)] = true
					}
				}
			}
		}
		return true
	})
	if len(r.Modifiers) <= 1 {
		return nil, fmt.Errorf("analysis: no modifier entries found in %s", bindingsFile)
	}
	return r, nil
}
