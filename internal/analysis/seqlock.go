package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SeqLock structurally checks the repo's seqlock protocol (DESIGN.md
// §12): a struct field named seq of type atomic.Uint32/Uint64 is a
// sequence lock guarding its sibling fields. Writers latch it with an
// even→odd CompareAndSwap and must release back to even (Store(s) to
// restore, Store(s+2) to publish); readers must test the loaded
// sequence for oddness (a writer is mid-update), read the protected
// fields, re-check the sequence before trusting the snapshot, and must
// not carry pointers into the protected region out of the retry loop.
//
// The checks are per function, grouped by the seq field's base
// expression. A function that Stores or CompareAndSwaps the sequence
// is a writer; one that only Loads it while also reading sibling
// fields is a reader. Finding kinds:
//
//   - seqlock.parity — a latch CAS with an even delta, or a release
//     Store that leaves the sequence odd.
//   - seqlock.unreleased — a function latches (CAS succeeds) but never
//     stores the sequence afterwards and the pre-latch value does not
//     escape by return (so no caller can release either). The latch()
//     helper shape — `return s, true` — is recognized and exempt.
//   - seqlock.norecheck — a reader consumes protected fields but never
//     compares a re-loaded sequence against the first load.
//   - seqlock.oddcheck — a reader never tests the sequence for
//     oddness, so it can consume a torn mid-write snapshot.
//   - seqlock.retain — a reader takes the address of a protected
//     sibling field; the pointer outlives the validity the sequence
//     re-check establishes.
var SeqLock = &Analyzer{
	Name: "seqlock",
	Doc:  "checks seqlock writers for odd/even discipline and readers for retry-loop re-checks",
	Run:  runSeqLock,
}

// seqOp is one operation on a seq field within a function.
type seqOp struct {
	kind string // "load", "store", "cas"
	call *ast.CallExpr
	pos  token.Pos
	base string // rendered base expression owning the seq field
}

func runSeqLock(p *Pass) {
	if p.Pkg == nil {
		return
	}
	for _, fd := range funcDecls(p.Files) {
		checkSeqFunc(p, fd)
	}
}

// seqFieldCall matches base.seq.<Method>(...) where seq is an
// atomic.Uint32/Uint64 struct field named "seq", returning the rendered
// base and the op kind.
func seqFieldCall(p *Pass, call *ast.CallExpr) (base, kind string, ok bool) {
	fun, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch fun.Sel.Name {
	case "Load":
		kind = "load"
	case "Store":
		kind = "store"
	case "CompareAndSwap":
		kind = "cas"
	case "Swap", "Add":
		kind = "store" // mutates the sequence; treat as a release-class op
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !isSel || inner.Sel.Name != "seq" {
		return "", "", false
	}
	s, found := p.Info.Selections[inner]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	named, isNamed := s.Obj().Type().(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", "", false
	}
	if obj.Name() != "Uint32" && obj.Name() != "Uint64" {
		return "", "", false
	}
	return types.ExprString(inner.X), kind, true
}

func checkSeqFunc(p *Pass, fd *ast.FuncDecl) {
	var ops []seqOp
	seqIdents := make(map[types.Object]string) // ident -> base it was Loaded from
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if base, kind, ok := seqFieldCall(p, st); ok {
				ops = append(ops, seqOp{kind: kind, call: st, pos: st.Pos(), base: base})
			}
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, rhs := range st.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if base, kind, ok := seqFieldCall(p, call); ok && kind == "load" {
						if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
							if obj := p.Info.Defs[id]; obj != nil {
								seqIdents[obj] = base
							} else if obj := p.Info.Uses[id]; obj != nil {
								seqIdents[obj] = base
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(ops) == 0 {
		return
	}
	byBase := make(map[string][]seqOp)
	for _, op := range ops {
		byBase[op.base] = append(byBase[op.base], op)
	}
	for base, bops := range byBase {
		writer := false
		for _, op := range bops {
			if op.kind != "load" {
				writer = true
			}
		}
		if writer {
			checkSeqWriter(p, fd, base, bops)
		} else {
			checkSeqReader(p, fd, base, bops, seqIdents)
		}
	}
}

// intConstVal returns e's compile-time integer value, if it has one.
func intConstVal(p *Pass, e ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// addDelta decomposes e as `expr + k` (either order), returning the
// non-constant side and k.
func addDelta(p *Pass, e ast.Expr) (ast.Expr, int64, bool) {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return nil, 0, false
	}
	if k, ok := intConstVal(p, bin.Y); ok {
		return bin.X, k, true
	}
	if k, ok := intConstVal(p, bin.X); ok {
		return bin.Y, k, true
	}
	return nil, 0, false
}

func checkSeqWriter(p *Pass, fd *ast.FuncDecl, base string, ops []seqOp) {
	var casOps, storeOps []seqOp
	for _, op := range ops {
		switch op.kind {
		case "cas":
			casOps = append(casOps, op)
		case "store":
			storeOps = append(storeOps, op)
		}
	}
	for _, op := range casOps {
		if len(op.call.Args) != 2 {
			continue
		}
		oldArg, newArg := op.call.Args[0], op.call.Args[1]
		if types.ExprString(oldArg) == types.ExprString(newArg) {
			p.Reportf(op.pos, "parity",
				"seqlock latch on %s.seq swaps the sequence for itself; a latch must make an even→odd transition (CompareAndSwap(s, s+1))", base)
			continue
		}
		if expr, k, ok := addDelta(p, newArg); ok && k%2 == 0 &&
			types.ExprString(expr) == types.ExprString(oldArg) {
			p.Reportf(op.pos, "parity",
				"seqlock latch on %s.seq adds an even delta (%d) and keeps parity; a latch must make an even→odd transition (CompareAndSwap(s, s+1))", base, k)
		}
	}
	for _, op := range storeOps {
		if len(op.call.Args) != 1 {
			continue
		}
		arg := op.call.Args[0]
		if k, ok := intConstVal(p, arg); ok && k%2 != 0 {
			p.Reportf(op.pos, "parity",
				"seqlock release on %s.seq stores the odd constant %d; a release must restore even parity (Store(s) to undo, Store(s+2) to publish)", base, k)
			continue
		}
		if _, k, ok := addDelta(p, arg); ok && k%2 != 0 {
			p.Reportf(op.pos, "parity",
				"seqlock release on %s.seq adds an odd delta (%d) and leaves the sequence odd; a release must restore even parity (Store(s) to undo, Store(s+2) to publish)", base, k)
		}
	}
	// A successful latch must be paired with a release, or hand the
	// pre-latch sequence to the caller (the latch() helper shape).
	for _, op := range casOps {
		released := false
		for _, st := range storeOps {
			if st.pos > op.pos {
				released = true
				break
			}
		}
		if released {
			continue
		}
		if latchedIdent, ok := ast.Unparen(op.call.Args[0]).(*ast.Ident); ok &&
			identEscapesByReturn(p, fd, latchedIdent) {
			continue
		}
		p.Reportf(op.pos, "unreleased",
			"seqlock on %s.seq is latched here but never released in this function, and the pre-latch sequence does not escape by return; a crashed writer would spin every reader forever", base)
	}
}

// identEscapesByReturn reports whether id's variable appears in some
// return statement of fd.
func identEscapesByReturn(p *Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if rid, ok := m.(*ast.Ident); ok && p.Info.Uses[rid] == obj {
					escapes = true
				}
				return true
			})
		}
		return true
	})
	return escapes
}

func checkSeqReader(p *Pass, fd *ast.FuncDecl, base string, ops []seqOp, seqIdents map[types.Object]string) {
	first := ops[0]
	for _, op := range ops[1:] {
		if op.pos < first.pos {
			first = op
		}
	}
	// seqDerived reports whether e is the sequence value: a direct
	// base.seq.Load() or an ident bound to one.
	seqDerived := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			b, kind, ok := seqFieldCall(p, x)
			return ok && kind == "load" && b == base
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return obj != nil && seqIdents[obj] == base
		case *ast.BinaryExpr:
			return false
		}
		return false
	}

	readsProtected := false
	rechecks := false
	oddTested := false
	var retained []*ast.SelectorExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name != "seq" && x.Pos() > first.pos && types.ExprString(x.X) == base {
				if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
					readsProtected = true
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ:
				if seqDerived(x.X) || seqDerived(x.Y) {
					rechecks = true
				}
			case token.AND:
				if k, ok := intConstVal(p, x.Y); ok && k == 1 && seqDerived(x.X) {
					oddTested = true
				}
				if k, ok := intConstVal(p, x.X); ok && k == 1 && seqDerived(x.Y) {
					oddTested = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				target := ast.Unparen(x.X)
				if idx, ok := target.(*ast.IndexExpr); ok {
					target = ast.Unparen(idx.X)
				}
				if sel, ok := target.(*ast.SelectorExpr); ok &&
					sel.Sel.Name != "seq" && types.ExprString(sel.X) == base {
					if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
						retained = append(retained, sel)
					}
				}
			}
		}
		return true
	})
	if !readsProtected {
		// Loads the sequence but not the guarded fields — a gen-counter
		// style use, not a seqlock read; nothing to check.
		return
	}
	if len(ops) < 2 || !rechecks {
		p.Reportf(first.pos, "norecheck",
			"seqlock reader loads %s.seq but never compares a re-loaded sequence against it after reading the protected fields; wrap the reads in a retry loop that re-checks seq", base)
	}
	if !oddTested {
		p.Reportf(first.pos, "oddcheck",
			"seqlock reader never tests %s.seq for oddness, so it can consume a torn mid-write snapshot; reject odd sequences (s&1 != 0) before reading", base)
	}
	for _, sel := range retained {
		p.Reportf(sel.Pos(), "retain",
			"seqlock reader takes the address of protected field %s.%s; the pointer outlives the sequence re-check — copy the data out instead", base, sel.Sel.Name)
	}
}
