package analysis

// WaiverAudit reports //swm:ok waivers that no longer suppress any
// finding, so the waiver ledger can only shrink: every entry either
// pays its way or is deleted. A waiver is live when any analyzer in
// the suite produces a finding it covers, so the driver (Run) executes
// the whole suite for usage-marking whenever this analyzer is
// requested — the Run field below is a sentinel and never called.
//
// Audit findings are reported at the waiver's own position and are
// deliberately unwaivable: they are generated after waiver matching,
// so stacking a second //swm:ok on a dead waiver just produces two
// dead-waiver findings. One finding kind: waiveraudit.dead.
var WaiverAudit = &Analyzer{
	Name: "waiveraudit",
	Doc:  "reports //swm:ok waivers that no longer suppress any finding (delete them)",
	Run:  func(*Pass) {}, // driven specially by Run; see analysis.go
}

// auditWaivers turns every waiver left unused after the full suite ran
// into a dead-waiver finding.
func auditWaivers(ws waiverSet) []Finding {
	var out []Finding
	for file, lines := range ws {
		for _, w := range lines {
			if w.used {
				continue
			}
			out = append(out, Finding{
				Analyzer: WaiverAudit.Name,
				ID:       WaiverAudit.Name + ".dead",
				File:     file,
				Line:     w.line,
				Col:      w.col,
				Message:  "//swm:ok waiver (reason: " + quoteReason(w.reason) + ") suppresses no finding; delete it",
			})
		}
	}
	return out
}

func quoteReason(r string) string {
	return `"` + r + `"`
}
