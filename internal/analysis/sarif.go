package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output, minimal but valid: one run, one driver, a rule
// per finding ID, one result per finding. Waived findings are emitted
// at level "note" so the inventory stays complete without tripping
// SARIF-consuming gates; unwaived findings are "error". File URIs are
// module-relative with forward slashes, which is what code-scanning
// uploaders expect.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits findings as a SARIF 2.1.0 log. Rules are derived
// from the analyzer suite (one per analyzer, described by its Doc) so
// every finding's ruleId resolves even for IDs with no findings this
// run.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	ruleIDs := make(map[string]string) // id -> description
	for _, a := range analyzers {
		ruleIDs[a.Name] = a.Doc
	}
	// Finding IDs are "<analyzer>.<kind>"; register each concrete ID
	// seen so consumers can group by exact rule.
	for _, f := range findings {
		if _, ok := ruleIDs[f.ID]; !ok {
			ruleIDs[f.ID] = "swmvet " + f.Analyzer + " finding"
		}
	}
	var rules []sarifRule
	for id, doc := range ruleIDs {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "error"
		msg := f.Message
		if f.Waived {
			level = "note"
			msg += " (waived: " + f.Reason + ")"
		}
		results = append(results, sarifResult{
			RuleID:  f.ID,
			Level:   level,
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "swmvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
