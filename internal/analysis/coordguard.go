package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// CoordGuard enforces the paper's wire limit on the Virtual Desktop:
// "the desktop may be as large as the usable area of an X window,
// 32767 x 32767 pixels" — coordinates ride the X protocol as int16, so
// desktop fields that drift past the limit wrap on the wire. Every
// store into a desktop coordinate field (PanX, PanY, DesktopW,
// DesktopH) must therefore go through a clamp helper (core's clamp,
// geom.Clamp, or the min/max built-ins); raw arithmetic assigned
// directly to one of these fields is exactly the bug class
// TestResizeDesktopShrinkReclampsPanAndScrollbars fixed in PR 1.
//
// Flagged forms:
//
//	scr.PanX = scr.PanX + dx   // raw arithmetic
//	scr.PanY += dy             // compound assignment
//	scr.DesktopW++             // increment
//	Screen{DesktopW: w * 4}    // composite literal arithmetic
//
// Clean forms pass the value through a call — `scr.PanX = clamp(x, 0,
// hi)` — which makes the clamp helpers the single doorway for desktop
// coordinate writes.
var CoordGuard = &Analyzer{
	Name: "coordguard",
	Doc:  "flags raw arithmetic stored into desktop coordinate fields without a clamp",
	Run:  runCoordGuard,
}

// desktopCoordFields are the struct fields carrying desktop-space
// coordinates subject to the 32767 limit.
var desktopCoordFields = map[string]bool{
	"PanX":     true,
	"PanY":     true,
	"DesktopW": true,
	"DesktopH": true,
}

func runCoordGuard(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					for i, lhs := range n.Lhs {
						if !isDesktopCoord(lhs) || i >= len(n.Rhs) {
							continue
						}
						if len(n.Lhs) != len(n.Rhs) {
							continue // tuple assignment from a call: opaque
						}
						if rawArith(p, n.Rhs[i]) {
							p.Reportf(n.Pos(), "unclamped",
								"raw arithmetic stored into desktop coordinate %s without a clamp; route it through geom.Clamp (paper limit: 32767x32767)",
								fieldName(lhs))
						}
					}
				} else {
					// Compound assignment (+=, -=, *=, ...) is raw
					// arithmetic by construction.
					for _, lhs := range n.Lhs {
						if isDesktopCoord(lhs) {
							p.Reportf(n.Pos(), "unclamped",
								"compound assignment to desktop coordinate %s bypasses the clamp helpers (paper limit: 32767x32767)",
								fieldName(lhs))
						}
					}
				}
			case *ast.IncDecStmt:
				if isDesktopCoord(n.X) {
					p.Reportf(n.Pos(), "unclamped",
						"increment of desktop coordinate %s bypasses the clamp helpers (paper limit: 32767x32767)",
						fieldName(n.X))
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !desktopCoordFields[key.Name] {
						continue
					}
					if rawArith(p, kv.Value) {
						p.Reportf(kv.Pos(), "unclamped",
							"raw arithmetic initializes desktop coordinate %s without a clamp (paper limit: 32767x32767)",
							key.Name)
					}
				}
			}
			return true
		})
	}
}

func isDesktopCoord(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && desktopCoordFields[sel.Sel.Name]
}

func fieldName(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "field"
}

// maxDesktopCoord is the paper's wire limit: desktop coordinates ride
// the X protocol as int16.
const maxDesktopCoord = 32767

// rawArith reports whether e computes arithmetic outside any call. A
// call result — clamp(), geom.Clamp(), min(), a conversion — is opaque:
// responsibility for the bound lies with the callee, and the clamp
// helpers are the expected doorway. A compile-time constant is checked
// against the limit directly, so sentinels like `scr.PanX = -1` pass
// while `DesktopW: 40000` does not.
func rawArith(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		v, exact := constant.Int64Val(constant.ToInt(tv.Value))
		return !exact || v < -(maxDesktopCoord+1) || v > maxDesktopCoord
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL:
			return true
		}
		return rawArith(p, e.X) || rawArith(p, e.Y)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			return true
		}
		return rawArith(p, e.X)
	case *ast.ParenExpr:
		return rawArith(p, e.X)
	}
	return false
}
