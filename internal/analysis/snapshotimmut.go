package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotImmut enforces the second rule of the lock-free xserver
// scheme: a value published through an atomic.Pointer[T] Store,
// Swap or CompareAndSwap is frozen. Readers hold snapshots with no
// lock; the only legal update is clone-mutate-publish. The analyzer
// flags plain writes (assignment, op-assign, ++/--) whose target chain
// passes through a type that is published somewhere in the package —
// kidGeoSnap, propTab, maskTab, the compiled xrdb trie — unless the
// chain is rooted in memory the function itself allocated and has not
// yet published.
//
// Freshness is tracked per function, optimistically: a local is fresh
// when every value ever assigned to it roots in a fresh allocation
// (&T{}, new, make, a composite literal, append onto nil or fresh, or
// a selector/index/deref chain into another fresh local). Anything
// else — parameters, receivers, package vars, and in particular the
// result of any call, which is where .Load() snapshots come from — is
// tainted, and writes through it are reported. The cyclic builder
// idiom (cur := root; next := cur.kids[k]; cur = next) resolves fresh,
// so clone-before-publish constructors like the xrdb trie compiler
// need no annotations.
//
// Published types in sync/atomic, basic types and interfaces are
// skipped: their contents are either accessed by method anyway or have
// nothing to write through.
//
// One finding kind: snapshotimmut.mutate.
var SnapshotImmut = &Analyzer{
	Name: "snapshotimmut",
	Doc:  "flags writes through values published via atomic.Pointer Store/CompareAndSwap (published snapshots are frozen)",
	Run:  runSnapshotImmut,
}

func runSnapshotImmut(p *Pass) {
	if p.Pkg == nil {
		return
	}
	published := collectPublished(p)
	if len(published) == 0 {
		return
	}
	for _, fd := range funcDecls(p.Files) {
		checkSnapshotWrites(p, fd, published)
	}
}

// collectPublished finds every T for which the package performs an
// atomic.Pointer[T].Store/Swap/CompareAndSwap, keyed by type string,
// with a representative publish position for the finding message.
func collectPublished(p *Pass) map[string]token.Pos {
	published := make(map[string]token.Pos)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Store", "Swap", "CompareAndSwap":
			default:
				return true
			}
			t := typeOf(p, sel.X)
			if t == nil {
				return true
			}
			elem := atomicPointerElem(t)
			if elem == nil || !publishableType(elem) {
				return true
			}
			key := types.TypeString(elem, nil)
			if _, seen := published[key]; !seen {
				published[key] = call.Pos()
			}
			return true
		})
	}
	return published
}

// atomicPointerElem returns T when t is (a pointer to)
// sync/atomic.Pointer[T], else nil.
func atomicPointerElem(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	if named.TypeArgs().Len() != 1 {
		return nil
	}
	return named.TypeArgs().At(0)
}

// publishableType reports whether a published T has interior memory a
// plain write could corrupt. Basic types, interfaces and the
// sync/atomic types themselves are out.
func publishableType(t types.Type) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return false
		}
	}
	switch t.Underlying().(type) {
	case *types.Basic, *types.Interface:
		return false
	}
	return true
}

func typeOf(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isPublishedType reports whether t (through any pointers) is one of
// the package's published snapshot types, returning its key.
func isPublishedType(published map[string]token.Pos, t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	key := types.TypeString(t, nil)
	_, ok := published[key]
	return key, ok
}

// freshness is the per-function optimistic dataflow over local idents.
type freshness struct {
	p       *Pass
	assigns map[*types.Var][]ast.Expr // every RHS ever assigned to the var
	memo    map[*types.Var]bool
	visit   map[*types.Var]bool
}

func newFreshness(p *Pass, fd *ast.FuncDecl) *freshness {
	fr := &freshness{
		p:       p,
		assigns: make(map[*types.Var][]ast.Expr),
		memo:    make(map[*types.Var]bool),
		visit:   make(map[*types.Var]bool),
	}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v := fr.identVar(id)
		if v == nil {
			return
		}
		fr.assigns[v] = append(fr.assigns[v], rhs)
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == len(st.Lhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			} else {
				// a, b := f() — the call result taints every LHS.
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					record(name, st.Values[i])
				} else if len(st.Values) == 0 && st.Type != nil {
					// var x T — zero value, owned by the function.
					record(name, nil)
				}
			}
		case *ast.RangeStmt:
			// for _, v := range x: v roots wherever x roots.
			if st.Value != nil {
				record(st.Value, st.X)
			}
			if st.Key != nil {
				record(st.Key, nil) // indices/keys are values, always fresh
			}
		}
		return true
	})
	return fr
}

func (fr *freshness) identVar(id *ast.Ident) *types.Var {
	obj := fr.p.Info.Defs[id]
	if obj == nil {
		obj = fr.p.Info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// freshExpr reports whether e roots in function-owned, not-yet-published
// memory. nil RHS (recorded for zero values and range keys) is fresh.
func (fr *freshness) freshExpr(e ast.Expr) bool {
	if e == nil {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		_ = x
		return true
	case *ast.UnaryExpr:
		u := x
		if u.Op == token.AND {
			return fr.freshExpr(u.X)
		}
		return true // numeric/boolean value, not a pointer
	case *ast.SelectorExpr:
		// package.Ident selections have no X variable to chase.
		if _, ok := fr.p.Info.Selections[x]; !ok {
			return false
		}
		return fr.freshExpr(x.X)
	case *ast.IndexExpr:
		return fr.freshExpr(x.X)
	case *ast.SliceExpr:
		return fr.freshExpr(x.X)
	case *ast.StarExpr:
		return fr.freshExpr(x.X)
	case *ast.Ident:
		if x.Name == "nil" {
			return true
		}
		v := fr.identVar(x)
		if v == nil {
			// Constants and such — values, not aliases.
			_, isConst := fr.p.Info.Uses[x].(*types.Const)
			return isConst
		}
		return fr.freshVar(v)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "new", "make":
				if _, isBuiltin := fr.p.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			case "append":
				if _, isBuiltin := fr.p.Info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
					return fr.freshExpr(x.Args[0])
				}
			}
		}
		// Conversion: freshness passes through, []byte(nil) etc.
		if tv, ok := fr.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return fr.freshExpr(x.Args[0])
		}
		// Any real call — including .Load() — yields shared memory.
		return false
	case *ast.TypeAssertExpr:
		return fr.freshExpr(x.X)
	case *ast.BinaryExpr:
		return true // arithmetic/comparison results carry no pointers we track
	}
	return false
}

// freshVar is the coinductive var judgment: fresh iff the function
// assigns it and every assignment is fresh. Cycles (cur = next; next
// drawn from cur's subtree) resolve optimistically to fresh, which is
// exactly the builder idiom.
func (fr *freshness) freshVar(v *types.Var) bool {
	if r, ok := fr.memo[v]; ok {
		return r
	}
	if fr.visit[v] {
		return true
	}
	rhss, ok := fr.assigns[v]
	if !ok {
		// Parameter, receiver, package var, or captured from an outer
		// function: shared memory.
		fr.memo[v] = false
		return false
	}
	fr.visit[v] = true
	res := true
	for _, rhs := range rhss {
		if !fr.freshExpr(rhs) {
			res = false
			break
		}
	}
	delete(fr.visit, v)
	fr.memo[v] = res
	return res
}

func checkSnapshotWrites(p *Pass, fd *ast.FuncDecl, published map[string]token.Pos) {
	fr := newFreshness(p, fd)
	checkTarget := func(lhs ast.Expr) {
		key, pos, passes := writeThroughPublished(p, published, lhs)
		if !passes {
			return
		}
		if fr.freshExpr(lhs) {
			return
		}
		p.Reportf(pos, "mutate",
			"write through snapshot type %s published by atomic.Pointer (publish at %s); published memory is frozen — clone, mutate, then Store",
			key, p.Fset.Position(published[key]))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkTarget(lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(st.X)
		}
		return true
	})
}

// writeThroughPublished walks a write target's access chain and reports
// whether any operand along it has a published snapshot type. Plain
// ident targets (rebinding a variable) are never memory writes.
func writeThroughPublished(p *Pass, published map[string]token.Pos, lhs ast.Expr) (key string, pos token.Pos, passes bool) {
	cur := ast.Unparen(lhs)
	for {
		var x ast.Expr
		switch t := cur.(type) {
		case *ast.SelectorExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.ParenExpr:
			cur = t.X
			continue
		default:
			return key, pos, passes
		}
		if k, ok := isPublishedType(published, typeOf(p, x)); ok && !passes {
			key, pos, passes = k, cur.Pos(), true
		}
		cur = ast.Unparen(x)
	}
}
