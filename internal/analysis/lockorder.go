package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder guards the locking discipline the PR 2 RWMutex/batch
// refactor introduced in internal/xserver: request methods take
// `Server.mu` once at their entry and then do all work through *Locked
// helpers, which never re-acquire. sync.RWMutex is not re-entrant, so a
// locking public method called from code that already holds the lock is
// a guaranteed deadlock — a class of bug the compiler cannot see.
//
// The analyzer builds the package's intra-package call graph, computes
// which functions may acquire a field named `mu` of type sync.Mutex or
// sync.RWMutex (directly, via a readLock helper, or transitively
// through another package function), and reports:
//
//   - lockorder.reentrant — a function that is holding the lock calls
//     a function that (transitively) acquires it again. The held
//     region runs from an acquire to the next non-deferred release in
//     source order; a deferred unlock holds to the end of the function.
//   - lockorder.held — a function following the *Locked naming
//     convention (callable only with the lock held) calls a function
//     that acquires the lock, or acquires it itself.
//   - lockorder.goroutine — a function literal spawned with `go` calls
//     a *Locked helper without first acquiring the lock. A goroutine
//     does not inherit its spawner's lock, so the hold region of the
//     enclosing function never extends into the spawned body; each
//     spawned literal is analyzed as its own context (named like
//     Go does, "Spawner.func1"), starting unheld.
//
// The region tracking is linear in source order, which is exact for
// the straight-line lock-defer-unlock shape the package uses and a
// safe approximation elsewhere; intentional exceptions carry //swm:ok.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags re-entrant Server.mu acquisition and locking calls from *Locked helpers",
	Run:  runLockOrder,
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evCall
)

type lockEvent struct {
	pos    token.Pos
	kind   lockEventKind
	callee *types.Func   // for evCall
	call   *ast.CallExpr // for evCall
}

type funcLockInfo struct {
	decl     *ast.FuncDecl
	events   []lockEvent
	acquires bool // has a direct acquire (mu.Lock/mu.RLock/readLock call)
	spawned  []*spawnInfo
}

// spawnInfo is the event stream of one go-spawned function literal (or
// direct `go f(...)` call). It is a separate analysis context from the
// enclosing function: it starts with the lock unheld regardless of
// where the spawn site sits, and its acquisitions do not make the
// enclosing function "acquiring" from its callers' point of view.
type spawnInfo struct {
	name   string
	events []lockEvent
}

func runLockOrder(p *Pass) {
	if p.Pkg == nil {
		return
	}
	infos := make(map[*types.Func]*funcLockInfo)
	for _, fd := range funcDecls(p.Files) {
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		infos[fn] = collectLockEvents(p, fd)
	}

	// mayAcquire: direct acquire, or a call (anywhere in the body) to a
	// same-package function that may acquire.
	mayAcquire := make(map[*types.Func]bool)
	var visiting map[*types.Func]bool
	var acquires func(fn *types.Func) bool
	acquires = func(fn *types.Func) bool {
		if v, ok := mayAcquire[fn]; ok {
			return v
		}
		if visiting[fn] {
			return false // break recursion cycles
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		info, ok := infos[fn]
		if !ok {
			return false
		}
		result := info.acquires
		for _, ev := range info.events {
			if ev.kind == evCall && acquires(ev.callee) {
				result = true
				break
			}
		}
		mayAcquire[fn] = result
		return result
	}
	visiting = make(map[*types.Func]bool)

	for fn, info := range infos {
		heldByName := strings.HasSuffix(fn.Name(), "Locked")
		held := heldByName
		for _, ev := range info.events {
			switch ev.kind {
			case evAcquire:
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (lock already held) but acquires the lock itself", fn.Name())
				}
				held = true
			case evRelease:
				held = false
			case evCall:
				if !acquires(ev.callee) {
					continue
				}
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (lock already held) but calls %s, which acquires the lock",
						fn.Name(), ev.callee.Name())
				} else if held {
					p.Reportf(ev.pos, "reentrant",
						"%s calls %s while holding the lock; %s re-acquires it (sync.RWMutex is not re-entrant)",
						fn.Name(), ev.callee.Name(), ev.callee.Name())
				}
			}
		}

		// Spawned goroutine bodies: each is its own context, starting
		// unheld no matter where the spawn site sits. The interesting
		// bug here is the inverse of re-entrancy — a *Locked helper
		// invoked on a goroutine that never took the lock.
		for _, sp := range info.spawned {
			held := false
			for _, ev := range sp.events {
				switch ev.kind {
				case evAcquire:
					held = true
				case evRelease:
					held = false
				case evCall:
					if acquires(ev.callee) {
						if held {
							p.Reportf(ev.pos, "reentrant",
								"%s calls %s while holding the lock; %s re-acquires it (sync.RWMutex is not re-entrant)",
								sp.name, ev.callee.Name(), ev.callee.Name())
						}
					} else if strings.HasSuffix(ev.callee.Name(), "Locked") && !held {
						p.Reportf(ev.pos, "goroutine",
							"%s runs on a spawned goroutine, which does not inherit the spawner's lock, but calls %s without acquiring it",
							sp.name, ev.callee.Name())
					}
				}
			}
		}
	}
}

// collectLockEvents linearizes a function body into acquire / release /
// intra-package-call events ordered by position. Function literals
// spawned with `go` are carved out into separate spawnInfo contexts —
// their bodies run on another goroutine, so their events neither extend
// the enclosing hold region nor count toward the enclosing function's
// mayAcquire. The spawn statement's arguments, which ARE evaluated on
// the spawning goroutine, stay in the enclosing context.
func collectLockEvents(p *Pass, fd *ast.FuncDecl) *funcLockInfo {
	info := &funcLockInfo{decl: fd}
	spawnN := 0

	var walk func(body ast.Node, events *[]lockEvent, acquires *bool)
	walk = func(body ast.Node, events *[]lockEvent, acquires *bool) {
		deferred := make(map[*ast.CallExpr]bool)
		goLit := make(map[*ast.FuncLit]bool)
		goCall := make(map[*ast.CallExpr]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				spawnN++
				sp := &spawnInfo{name: fmt.Sprintf("%s.func%d", fd.Name.Name, spawnN)}
				info.spawned = append(info.spawned, sp)
				var spAcquires bool
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					// Analyze the literal's body in the spawn context,
					// and skip it when the outer walk reaches it.
					goLit[lit] = true
					walk(lit.Body, &sp.events, &spAcquires)
				} else {
					// `go s.f(...)`: f runs on the new goroutine; only
					// its arguments evaluate here.
					goCall[gs.Call] = true
					if callee := calleeFunc(p.Info, gs.Call); callee != nil && callee.Pkg() == p.Pkg {
						sp.events = append(sp.events, lockEvent{pos: gs.Call.Pos(), kind: evCall, callee: callee, call: gs.Call})
					}
				}
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok && goLit[lit] {
				return false // already walked as a spawn context
			}
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, isMu := muOp(p.Info, call); isMu {
				// Deferred unlocks hold to function end: no release event.
				if kind == evAcquire {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire})
					*acquires = true
				} else if !deferred[call] {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease})
				}
				return true
			}
			if goCall[call] {
				return true // the call itself runs on the spawned goroutine
			}
			callee := calleeFunc(p.Info, call)
			if callee == nil || callee.Pkg() != p.Pkg {
				return true
			}
			switch callee.Name() {
			case "readLock":
				*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire})
				*acquires = true
			case "readUnlock":
				if !deferred[call] {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease})
				}
			default:
				*events = append(*events, lockEvent{pos: call.Pos(), kind: evCall, callee: callee, call: call})
			}
			return true
		})
		sort.SliceStable(*events, func(i, j int) bool { return (*events)[i].pos < (*events)[j].pos })
	}
	walk(fd.Body, &info.events, &info.acquires)
	return info
}

// muOp recognizes <expr>.mu.Lock() / RLock() / Unlock() / RUnlock()
// where mu is a sync.Mutex or sync.RWMutex field named exactly "mu".
func muOp(info *types.Info, call *ast.CallExpr) (lockEventKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	var kind lockEventKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evAcquire
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return 0, false
	}
	t := info.Types[inner].Type
	if t == nil {
		return 0, false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return 0, false
	}
	return kind, true
}
