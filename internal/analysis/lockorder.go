package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder guards the locking discipline of internal/xserver across
// its two generations. The PR 2 shape — request methods take
// `Server.mu` once at their entry and then work through *Locked
// helpers, which never re-acquire — still holds for the exclusive
// paths. The striped refactor added a second lock class: per-stripe
// locks guarding shards of the window index, which sit *below* the
// server lock in the hierarchy and may only be taken through the
// doorways in stripes.go (lockStripe / lockStripes2), whose two-stripe
// form acquires in ascending stripe order.
//
// The analyzer builds the package's intra-package call graph, computes
// per lock class which functions may acquire — the server class is a
// field named `mu` of type sync.Mutex/RWMutex on any type except
// `stripe` (or the readLock helper); the stripe class is a `mu` field
// on a type named `stripe`, or a doorway call — and reports:
//
//   - lockorder.reentrant — a function that is holding the server lock
//     calls a function that (transitively) acquires it again. The held
//     region runs from an acquire to the next non-deferred release in
//     source order; a deferred unlock holds to the end of the function.
//   - lockorder.held — a function following the *Locked naming
//     convention (callable only with the server lock held exclusively)
//     acquires either lock class itself, or calls a function that
//     acquires the server lock. Holding mu exclusively already owns
//     every stripe, so a *Locked helper taking a stripe is as wrong as
//     one taking mu.
//   - lockorder.stripe — re-entrant stripe acquisition: a second
//     doorway acquire, or a call to a function that may acquire a
//     stripe, while a stripe is already held. stripeFor is dynamic, so
//     any nested acquire may hit the same stripe and self-deadlock;
//     holding two stripes is legal only through the ascending-order
//     lockStripes2 doorway.
//   - lockorder.order — acquiring the server lock (directly or through
//     a call) while holding a stripe. The hierarchy is mu above
//     stripes; taking them bottom-up deadlocks against every
//     RLock-then-stripe taker.
//   - lockorder.stripeescape — a direct stripe-lock operation outside
//     stripes.go. The doorways are the only sanctioned way in; a raw
//     st.mu.Lock() elsewhere bypasses both the ordering and the
//     contention observer.
//   - lockorder.goroutine — a function literal spawned with `go` calls
//     a *Locked helper without first acquiring the lock. A goroutine
//     does not inherit its spawner's lock, so the hold region of the
//     enclosing function never extends into the spawned body; each
//     spawned literal is analyzed as its own context (named like
//     Go does, "Spawner.func1"), starting unheld.
//
// Below the stripes the hierarchy continues through the input-dispatch
// lock and the per-connection leaf locks: Server.mu > stripes >
// inputMu > Conn.qMu/errMu. Fields named inputMu, qMu and errMu of
// type sync.Mutex/RWMutex form three more classes; acquiring up the
// chain while holding a lower lock (or a leaf while holding its peer
// leaf — the two are unordered) is lockorder.order, and re-acquiring
// any of them while held is lockorder.reentrant.
//
// The region tracking is linear in source order, which is exact for
// the straight-line lock-defer-unlock shape the package uses and a
// safe approximation elsewhere; intentional exceptions carry //swm:ok.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags re-entrant or misordered Server.mu/stripe acquisition and locking calls from *Locked helpers",
	Run:  runLockOrder,
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evCall
)

// lockClass distinguishes the modeled lock classes, in hierarchy order:
// Server.mu > stripes > inputMu > Conn.qMu/errMu (DESIGN.md §12). The
// two connection leaf locks share a rank and are unordered peers —
// holding both is itself a violation.
type lockClass int

const (
	classServer lockClass = iota
	classStripe
	classInput   // a field named inputMu (the input-dispatch lock)
	classConnQ   // a field named qMu (per-connection event queue leaf)
	classConnErr // a field named errMu (per-connection error queue leaf)
	numLockClasses
)

// lockClassName renders a class for findings.
func lockClassName(c lockClass) string {
	switch c {
	case classServer:
		return "the server lock"
	case classStripe:
		return "a stripe"
	case classInput:
		return "inputMu"
	case classConnQ:
		return "qMu"
	case classConnErr:
		return "errMu"
	}
	return "?"
}

// leafPeer returns the other connection leaf class.
func leafPeer(c lockClass) lockClass {
	if c == classConnQ {
		return classConnErr
	}
	return classConnQ
}

// stripesFile is the one file allowed to touch stripe locks directly.
const stripesFile = "stripes.go"

type lockEvent struct {
	pos    token.Pos
	kind   lockEventKind
	class  lockClass
	direct bool          // a literal <x>.mu.Lock(), not a doorway call
	callee *types.Func   // for evCall
	call   *ast.CallExpr // for evCall
}

type funcLockInfo struct {
	decl      *ast.FuncDecl
	events    []lockEvent
	acquires  [numLockClasses]bool // direct acquire per class
	inStripes bool                 // declared in stripes.go (doorway implementation)
	spawned   []*spawnInfo
}

// spawnInfo is the event stream of one go-spawned function literal (or
// direct `go f(...)` call). It is a separate analysis context from the
// enclosing function: it starts with the lock unheld regardless of
// where the spawn site sits, and its acquisitions do not make the
// enclosing function "acquiring" from its callers' point of view.
type spawnInfo struct {
	name   string
	events []lockEvent
}

func runLockOrder(p *Pass) {
	if p.Pkg == nil {
		return
	}
	infos := make(map[*types.Func]*funcLockInfo)
	for _, fd := range funcDecls(p.Files) {
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		info := collectLockEvents(p, fd)
		info.inStripes = filepath.Base(p.Fset.Position(fd.Pos()).Filename) == stripesFile
		infos[fn] = info
	}

	// mayAcquire per class: direct acquire, or a call (anywhere in the
	// body) to a same-package function that may acquire.
	acquiresFn := func(direct func(*funcLockInfo) bool) func(*types.Func) bool {
		cache := make(map[*types.Func]bool)
		visiting := make(map[*types.Func]bool)
		var rec func(fn *types.Func) bool
		rec = func(fn *types.Func) bool {
			if v, ok := cache[fn]; ok {
				return v
			}
			if visiting[fn] {
				return false // break recursion cycles
			}
			visiting[fn] = true
			defer delete(visiting, fn)
			info, ok := infos[fn]
			if !ok {
				return false
			}
			result := direct(info)
			if !result {
				for _, ev := range info.events {
					if ev.kind == evCall && rec(ev.callee) {
						result = true
						break
					}
				}
			}
			cache[fn] = result
			return result
		}
		return rec
	}
	var acquiresClass [numLockClasses]func(*types.Func) bool
	for c := lockClass(0); c < numLockClasses; c++ {
		c := c
		acquiresClass[c] = acquiresFn(func(i *funcLockInfo) bool { return i.acquires[c] })
	}
	acquiresServer := acquiresClass[classServer]
	acquiresStripe := acquiresClass[classStripe]

	for fn, info := range infos {
		heldByName := strings.HasSuffix(fn.Name(), "Locked")
		held := heldByName
		stripeHeld := false
		var heldC [numLockClasses]bool // classInput and below
		heldBelow := func() (lockClass, bool) {
			for _, c := range []lockClass{classInput, classConnQ, classConnErr} {
				if heldC[c] {
					return c, true
				}
			}
			return 0, false
		}
		for _, ev := range info.events {
			switch {
			case ev.kind == evAcquire && ev.class == classServer:
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (lock already held) but acquires the lock itself", fn.Name())
				} else if stripeHeld && !info.inStripes {
					p.Reportf(ev.pos, "order",
						"%s acquires the server lock while holding a stripe (hierarchy is mu above stripes)", fn.Name())
				} else if below, ok := heldBelow(); ok {
					p.Reportf(ev.pos, "order",
						"%s acquires the server lock while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
						fn.Name(), lockClassName(below))
				}
				held = true
			case ev.kind == evAcquire && ev.class == classStripe:
				if ev.direct && !info.inStripes {
					p.Reportf(ev.pos, "stripeescape",
						"%s performs a direct stripe lock operation outside %s; use the lockStripe/lockStripes2 doorways", fn.Name(), stripesFile)
				}
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (exclusive lock already owns every stripe) but acquires a stripe", fn.Name())
				} else if stripeHeld && !info.inStripes {
					p.Reportf(ev.pos, "stripe",
						"%s acquires a second stripe while holding one; only the ascending lockStripes2 doorway may hold two", fn.Name())
				} else if below, ok := heldBelow(); ok {
					p.Reportf(ev.pos, "order",
						"%s acquires a stripe while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
						fn.Name(), lockClassName(below))
				}
				stripeHeld = true
			case ev.kind == evAcquire && ev.class >= classInput:
				label := lockClassName(ev.class)
				switch {
				case heldC[ev.class]:
					p.Reportf(ev.pos, "reentrant",
						"%s re-acquires %s while holding it (sync.Mutex is not re-entrant)", fn.Name(), label)
				case ev.class == classInput && (heldC[classConnQ] || heldC[classConnErr]):
					below := classConnQ
					if !heldC[classConnQ] {
						below = classConnErr
					}
					p.Reportf(ev.pos, "order",
						"%s acquires inputMu while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
						fn.Name(), lockClassName(below))
				case ev.class != classInput && heldC[leafPeer(ev.class)]:
					p.Reportf(ev.pos, "order",
						"%s acquires %s while holding %s; the connection leaf locks are unordered peers — never hold both",
						fn.Name(), label, lockClassName(leafPeer(ev.class)))
				}
				heldC[ev.class] = true
			case ev.kind == evRelease && ev.class == classServer:
				held = false
			case ev.kind == evRelease && ev.class == classStripe:
				stripeHeld = false
			case ev.kind == evRelease && ev.class >= classInput:
				heldC[ev.class] = false
			case ev.kind == evCall:
				sAcq := acquiresServer(ev.callee)
				stAcq := acquiresStripe(ev.callee)
				if sAcq {
					if heldByName {
						p.Reportf(ev.pos, "held",
							"%s follows the *Locked convention (lock already held) but calls %s, which acquires the lock",
							fn.Name(), ev.callee.Name())
					} else if held {
						p.Reportf(ev.pos, "reentrant",
							"%s calls %s while holding the lock; %s re-acquires it (sync.RWMutex is not re-entrant)",
							fn.Name(), ev.callee.Name(), ev.callee.Name())
					} else if stripeHeld && !info.inStripes {
						p.Reportf(ev.pos, "order",
							"%s calls %s, which acquires the server lock, while holding a stripe (hierarchy is mu above stripes)",
							fn.Name(), ev.callee.Name())
					} else if below, ok := heldBelow(); ok {
						p.Reportf(ev.pos, "order",
							"%s calls %s, which acquires the server lock, while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
							fn.Name(), ev.callee.Name(), lockClassName(below))
					}
				}
				if stAcq {
					if stripeHeld && !info.inStripes {
						p.Reportf(ev.pos, "stripe",
							"%s calls %s while holding a stripe; %s re-acquires a stripe (stripeFor is dynamic, so this can self-deadlock)",
							fn.Name(), ev.callee.Name(), ev.callee.Name())
					} else if below, ok := heldBelow(); ok {
						p.Reportf(ev.pos, "order",
							"%s calls %s, which acquires a stripe, while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
							fn.Name(), ev.callee.Name(), lockClassName(below))
					}
				}
				for _, c := range []lockClass{classInput, classConnQ, classConnErr} {
					if !acquiresClass[c](ev.callee) {
						continue
					}
					label := lockClassName(c)
					switch {
					case heldC[c]:
						p.Reportf(ev.pos, "reentrant",
							"%s calls %s while holding %s; %s re-acquires it (sync.Mutex is not re-entrant)",
							fn.Name(), ev.callee.Name(), label, ev.callee.Name())
					case c == classInput && (heldC[classConnQ] || heldC[classConnErr]):
						below, _ := heldBelow()
						p.Reportf(ev.pos, "order",
							"%s calls %s, which acquires inputMu, while holding %s (hierarchy is Server.mu > stripes > inputMu > qMu/errMu)",
							fn.Name(), ev.callee.Name(), lockClassName(below))
					case c != classInput && heldC[leafPeer(c)]:
						p.Reportf(ev.pos, "order",
							"%s calls %s, which acquires %s, while holding %s; the connection leaf locks are unordered peers — never hold both",
							fn.Name(), ev.callee.Name(), label, lockClassName(leafPeer(c)))
					}
				}
			}
		}

		// Spawned goroutine bodies: each is its own context, starting
		// unheld no matter where the spawn site sits. The interesting
		// bug here is the inverse of re-entrancy — a *Locked helper
		// invoked on a goroutine that never took the lock.
		for _, sp := range info.spawned {
			held := false
			stripeHeld := false
			for _, ev := range sp.events {
				switch {
				case ev.kind == evAcquire && ev.class == classServer:
					held = true
				case ev.kind == evAcquire && ev.class == classStripe:
					if stripeHeld {
						p.Reportf(ev.pos, "stripe",
							"%s acquires a second stripe while holding one; only the ascending lockStripes2 doorway may hold two", sp.name)
					}
					stripeHeld = true
				case ev.kind == evRelease && ev.class == classServer:
					held = false
				case ev.kind == evRelease && ev.class == classStripe:
					stripeHeld = false
				case ev.kind == evCall:
					if acquiresServer(ev.callee) {
						if held {
							p.Reportf(ev.pos, "reentrant",
								"%s calls %s while holding the lock; %s re-acquires it (sync.RWMutex is not re-entrant)",
								sp.name, ev.callee.Name(), ev.callee.Name())
						}
					} else if strings.HasSuffix(ev.callee.Name(), "Locked") && !held {
						p.Reportf(ev.pos, "goroutine",
							"%s runs on a spawned goroutine, which does not inherit the spawner's lock, but calls %s without acquiring it",
							sp.name, ev.callee.Name())
					}
				}
			}
		}
	}
}

// doorway maps the stripes.go doorway function names to their event
// shape at a call site.
func doorway(name string) (lockEventKind, bool) {
	switch name {
	case "lockStripe", "lockStripes2", "acquireStripe":
		return evAcquire, true
	case "unlockStripe", "unlockStripes2":
		return evRelease, true
	}
	return 0, false
}

// collectLockEvents linearizes a function body into acquire / release /
// intra-package-call events ordered by position. Function literals
// spawned with `go` are carved out into separate spawnInfo contexts —
// their bodies run on another goroutine, so their events neither extend
// the enclosing hold region nor count toward the enclosing function's
// mayAcquire. The spawn statement's arguments, which ARE evaluated on
// the spawning goroutine, stay in the enclosing context.
func collectLockEvents(p *Pass, fd *ast.FuncDecl) *funcLockInfo {
	info := &funcLockInfo{decl: fd}
	spawnN := 0

	var walk func(body ast.Node, events *[]lockEvent, acq *[numLockClasses]bool)
	walk = func(body ast.Node, events *[]lockEvent, acq *[numLockClasses]bool) {
		deferred := make(map[*ast.CallExpr]bool)
		goLit := make(map[*ast.FuncLit]bool)
		goCall := make(map[*ast.CallExpr]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				spawnN++
				sp := &spawnInfo{name: fmt.Sprintf("%s.func%d", fd.Name.Name, spawnN)}
				info.spawned = append(info.spawned, sp)
				var spAcq [numLockClasses]bool
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					// Analyze the literal's body in the spawn context,
					// and skip it when the outer walk reaches it.
					goLit[lit] = true
					walk(lit.Body, &sp.events, &spAcq)
				} else {
					// `go s.f(...)`: f runs on the new goroutine; only
					// its arguments evaluate here.
					goCall[gs.Call] = true
					if callee := calleeFunc(p.Info, gs.Call); callee != nil && callee.Pkg() == p.Pkg {
						sp.events = append(sp.events, lockEvent{pos: gs.Call.Pos(), kind: evCall, callee: callee, call: gs.Call})
					}
				}
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok && goLit[lit] {
				return false // already walked as a spawn context
			}
			if ds, ok := n.(*ast.DeferStmt); ok {
				deferred[ds.Call] = true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, class, isMu := muOp(p.Info, call); isMu {
				// Deferred unlocks hold to function end: no release event.
				if kind == evAcquire {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire, class: class, direct: true})
					acq[class] = true
				} else if !deferred[call] {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease, class: class, direct: true})
				}
				return true
			}
			if goCall[call] {
				return true // the call itself runs on the spawned goroutine
			}
			callee := calleeFunc(p.Info, call)
			if callee == nil || callee.Pkg() != p.Pkg {
				return true
			}
			if kind, isDoorway := doorway(callee.Name()); isDoorway {
				if kind == evAcquire {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire, class: classStripe})
					acq[classStripe] = true
				} else if !deferred[call] {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease, class: classStripe})
				}
				return true
			}
			switch callee.Name() {
			case "readLock":
				*events = append(*events, lockEvent{pos: call.Pos(), kind: evAcquire, class: classServer})
				acq[classServer] = true
			case "readUnlock":
				if !deferred[call] {
					*events = append(*events, lockEvent{pos: call.Pos(), kind: evRelease, class: classServer})
				}
			default:
				*events = append(*events, lockEvent{pos: call.Pos(), kind: evCall, callee: callee, call: call})
			}
			return true
		})
		sort.SliceStable(*events, func(i, j int) bool { return (*events)[i].pos < (*events)[j].pos })
	}
	walk(fd.Body, &info.events, &info.acquires)
	return info
}

// muOp recognizes <expr>.<field>.Lock() / RLock() / Unlock() /
// RUnlock() where the field is a sync.Mutex or sync.RWMutex named for
// one of the modeled classes: `mu` (server, or stripe when the owning
// type is named "stripe"), `inputMu`, `qMu`, or `errMu`.
func muOp(info *types.Info, call *ast.CallExpr) (lockEventKind, lockClass, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, 0, false
	}
	var kind lockEventKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evAcquire
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return 0, 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return 0, 0, false
	}
	var class lockClass
	switch inner.Sel.Name {
	case "mu":
		class = classServer
	case "inputMu":
		class = classInput
	case "qMu":
		class = classConnQ
	case "errMu":
		class = classConnErr
	default:
		return 0, 0, false
	}
	t := info.Types[inner].Type
	if t == nil {
		return 0, 0, false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0, 0, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return 0, 0, false
	}
	if class == classServer {
		if ot := info.Types[inner.X].Type; ot != nil {
			if p, isPtr := ot.(*types.Pointer); isPtr {
				ot = p.Elem()
			}
			if onamed, isNamed := ot.(*types.Named); isNamed && onamed.Obj().Name() == "stripe" {
				class = classStripe
			}
		}
	}
	return kind, class, true
}
