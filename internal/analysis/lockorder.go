package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder guards the locking discipline the PR 2 RWMutex/batch
// refactor introduced in internal/xserver: request methods take
// `Server.mu` once at their entry and then do all work through *Locked
// helpers, which never re-acquire. sync.RWMutex is not re-entrant, so a
// locking public method called from code that already holds the lock is
// a guaranteed deadlock — a class of bug the compiler cannot see.
//
// The analyzer builds the package's intra-package call graph, computes
// which functions may acquire a field named `mu` of type sync.Mutex or
// sync.RWMutex (directly, via a readLock helper, or transitively
// through another package function), and reports:
//
//   - lockorder.reentrant — a function that is holding the lock calls
//     a function that (transitively) acquires it again. The held
//     region runs from an acquire to the next non-deferred release in
//     source order; a deferred unlock holds to the end of the function.
//   - lockorder.held — a function following the *Locked naming
//     convention (callable only with the lock held) calls a function
//     that acquires the lock, or acquires it itself.
//
// The region tracking is linear in source order, which is exact for
// the straight-line lock-defer-unlock shape the package uses and a
// safe approximation elsewhere; intentional exceptions carry //swm:ok.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags re-entrant Server.mu acquisition and locking calls from *Locked helpers",
	Run:  runLockOrder,
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evCall
)

type lockEvent struct {
	pos    token.Pos
	kind   lockEventKind
	callee *types.Func   // for evCall
	call   *ast.CallExpr // for evCall
}

type funcLockInfo struct {
	decl     *ast.FuncDecl
	events   []lockEvent
	acquires bool // has a direct acquire (mu.Lock/mu.RLock/readLock call)
}

func runLockOrder(p *Pass) {
	if p.Pkg == nil {
		return
	}
	infos := make(map[*types.Func]*funcLockInfo)
	for _, fd := range funcDecls(p.Files) {
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		infos[fn] = collectLockEvents(p, fd)
	}

	// mayAcquire: direct acquire, or a call (anywhere in the body) to a
	// same-package function that may acquire.
	mayAcquire := make(map[*types.Func]bool)
	var visiting map[*types.Func]bool
	var acquires func(fn *types.Func) bool
	acquires = func(fn *types.Func) bool {
		if v, ok := mayAcquire[fn]; ok {
			return v
		}
		if visiting[fn] {
			return false // break recursion cycles
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		info, ok := infos[fn]
		if !ok {
			return false
		}
		result := info.acquires
		for _, ev := range info.events {
			if ev.kind == evCall && acquires(ev.callee) {
				result = true
				break
			}
		}
		mayAcquire[fn] = result
		return result
	}
	visiting = make(map[*types.Func]bool)

	for fn, info := range infos {
		heldByName := strings.HasSuffix(fn.Name(), "Locked")
		held := heldByName
		for _, ev := range info.events {
			switch ev.kind {
			case evAcquire:
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (lock already held) but acquires the lock itself", fn.Name())
				}
				held = true
			case evRelease:
				held = false
			case evCall:
				if !acquires(ev.callee) {
					continue
				}
				if heldByName {
					p.Reportf(ev.pos, "held",
						"%s follows the *Locked convention (lock already held) but calls %s, which acquires the lock",
						fn.Name(), ev.callee.Name())
				} else if held {
					p.Reportf(ev.pos, "reentrant",
						"%s calls %s while holding the lock; %s re-acquires it (sync.RWMutex is not re-entrant)",
						fn.Name(), ev.callee.Name(), ev.callee.Name())
				}
			}
		}
	}
}

// collectLockEvents linearizes a function body into acquire / release /
// intra-package-call events ordered by position.
func collectLockEvents(p *Pass, fd *ast.FuncDecl) *funcLockInfo {
	info := &funcLockInfo{decl: fd}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, isMu := muOp(p.Info, call); isMu {
			// Deferred unlocks hold to function end: no release event.
			if kind == evAcquire {
				info.events = append(info.events, lockEvent{pos: call.Pos(), kind: evAcquire})
				info.acquires = true
			} else if !deferred[call] {
				info.events = append(info.events, lockEvent{pos: call.Pos(), kind: evRelease})
			}
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil || callee.Pkg() != p.Pkg {
			return true
		}
		switch callee.Name() {
		case "readLock":
			info.events = append(info.events, lockEvent{pos: call.Pos(), kind: evAcquire})
			info.acquires = true
		case "readUnlock":
			if !deferred[call] {
				info.events = append(info.events, lockEvent{pos: call.Pos(), kind: evRelease})
			}
		default:
			info.events = append(info.events, lockEvent{pos: call.Pos(), kind: evCall, callee: callee, call: call})
		}
		return true
	})
	sort.SliceStable(info.events, func(i, j int) bool { return info.events[i].pos < info.events[j].pos })
	return info
}

// muOp recognizes <expr>.mu.Lock() / RLock() / Unlock() / RUnlock()
// where mu is a sync.Mutex or sync.RWMutex field named exactly "mu".
func muOp(info *types.Info, call *ast.CallExpr) (lockEventKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	var kind lockEventKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = evAcquire
	case "Unlock", "RUnlock":
		kind = evRelease
	default:
		return 0, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" {
		return 0, false
	}
	t := info.Types[inner].Type
	if t == nil {
		return 0, false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return 0, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return 0, false
	}
	return kind, true
}
