package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// FuncRef cross-checks the repo's declarative policy layer against its
// implementation. The paper's design puts look-and-feel in data —
// resource strings full of `f.*` function invocations and binding
// modifier names — which the Go compiler never sees: a typo'd
// `f.pangoto` or an unknown modifier is a silent no-op at runtime.
// FuncRef extracts the real function table from
// internal/core/functions.go and the modifier table from
// internal/bindings/bindings.go (see registry.go) and verifies every
// string literal in the analyzed packages against them:
//
//   - funcref.func — an `f.<name>` token that is not a registered
//     window-manager function.
//   - funcref.modifier — a modifier token before a `<event>` in a
//     binding line that is not a registered modifier.
//   - funcref.event — an `<event>` type in a binding line that the
//     bindings parser would reject.
//
// Findings inside multi-line string literals point at the exact line of
// the offending token; a //swm:ok waiver on the literal's first line
// covers the whole literal, since string content cannot carry comments.
var FuncRef = &Analyzer{
	Name: "funcref",
	Doc:  "flags f.* names, binding modifiers, and event types that do not exist in the registries",
	Run:  runFuncRef,
}

func runFuncRef(p *Pass) {
	reg, err := p.Ctx.Registry()
	if err != nil || reg == nil {
		// Without the registry files there is nothing to check against.
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			value, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkLiteral(p, reg, lit, value)
			return true
		})
	}
}

// litPos converts a byte offset within a string literal's value to a
// source position. For raw strings the mapping is exact (the value is
// the source text between the backquotes); for interpreted strings the
// escape sequences make exact mapping impossible, so the literal's own
// position is used.
func litPos(lit *ast.BasicLit, off int) token.Pos {
	if strings.HasPrefix(lit.Value, "`") {
		return lit.ValuePos + token.Pos(1+off)
	}
	return lit.ValuePos
}

func isIdentChar(b byte) bool {
	return b == '_' || b == '*' || b == '.' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func isAlnum(b byte) bool {
	return ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

func checkLiteral(p *Pass, reg *Registry, lit *ast.BasicLit, value string) {
	// 1. Every f.<name> token anywhere in the literal.
	for i := 0; i+2 < len(value); i++ {
		if value[i] != 'f' || value[i+1] != '.' {
			continue
		}
		if i > 0 && isIdentChar(value[i-1]) {
			continue // part of a larger word: "conf.", "self."
		}
		j := i + 2
		if !isAlnum(value[j]) {
			continue // "f." with no name: prose or a prefix constant
		}
		for j < len(value) && isAlnum(value[j]) {
			j++
		}
		name := strings.ToLower(value[i:j])
		if !reg.Functions[name] {
			p.ReportfAnchored(litPos(lit, i), lit.Pos(), "func",
				"unknown window manager function %q: not registered in internal/core/functions.go", name)
		}
		i = j - 1
	}

	// 2. Modifier and event tokens on binding lines. A binding line has
	// the Xt shape `mods <Event>detail : f.func ...`; in a resource
	// file it may be prefixed by `name.bindings:`. Only lines that bind
	// an f.* function are inspected, which keeps prose and unrelated
	// strings out of scope.
	off := 0
	for _, line := range strings.Split(value, "\n") {
		lineOff := off
		off += len(line) + 1
		trimmed := strings.TrimRight(line, "\\ \t")
		lt := strings.IndexByte(trimmed, '<')
		if lt < 0 {
			continue
		}
		gt := strings.IndexByte(trimmed[lt:], '>')
		if gt < 0 {
			continue
		}
		gt += lt
		after := trimmed[gt+1:]
		colon := strings.IndexByte(after, ':')
		if colon < 0 || !strings.Contains(after[colon:], "f.") {
			continue
		}
		// Modifiers: fields between the resource key (if any) and '<'.
		prefix := trimmed[:lt]
		prefixOff := lineOff
		if c := strings.LastIndexByte(prefix, ':'); c >= 0 {
			prefixOff += c + 1
			prefix = prefix[c+1:]
		}
		for _, field := range strings.Fields(prefix) {
			if !reg.Modifiers[strings.ToLower(field)] {
				fieldOff := prefixOff + strings.Index(trimmed[prefixOff-lineOff:lt], field)
				p.ReportfAnchored(litPos(lit, fieldOff), lit.Pos(), "modifier",
					"unknown binding modifier %q: not in internal/bindings/bindings.go modifierNames", field)
			}
		}
		// Event type inside <...>.
		ev := strings.ToLower(strings.TrimSpace(trimmed[lt+1 : gt]))
		if !validEventType(ev) {
			p.ReportfAnchored(litPos(lit, lineOff+lt), lit.Pos(), "event",
				"unknown binding event type %q: the bindings parser would reject it", trimmed[lt+1:gt])
		}
	}
}

// validEventType mirrors the event grammar of bindings.parseLine.
func validEventType(ev string) bool {
	if rest, ok := strings.CutPrefix(ev, "btn"); ok {
		rest = strings.TrimSuffix(rest, "up")
		rest = strings.TrimSuffix(rest, "down")
		return len(rest) == 1 && rest[0] >= '1' && rest[0] <= '5'
	}
	switch ev {
	case "key", "keyup", "enter", "enterwindow", "leave", "leavewindow", "motion", "ptrmoved":
		return true
	}
	return false
}
