package twm

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Context classifies where a button binding applies, mirroring twm's
// fixed binding contexts (window / title / icon / root) — contrast with
// swm, where *every object* is its own context (paper §4.6).
type Context int

const (
	ContextWindow Context = iota
	ContextTitle
	ContextIcon
	ContextRoot
)

var contextNames = map[string]Context{
	"window": ContextWindow,
	"title":  ContextTitle,
	"icon":   ContextIcon,
	"root":   ContextRoot,
}

type buttonBinding struct {
	button  int
	context Context
	fn      string
}

// Config is a parsed .twmrc. Only a fixed set of variables exists — the
// paper's point about limited configurability.
type Config struct {
	BorderWidth     int
	TitleFont       string
	ShowIconManager bool
	NoTitle         map[string]bool
	buttons         []buttonBinding
}

// DefaultConfig returns twm's built-in policy.
func DefaultConfig() *Config {
	return &Config{
		BorderWidth:     defaultBorder,
		TitleFont:       "fixed",
		ShowIconManager: true,
		NoTitle:         map[string]bool{},
		buttons: []buttonBinding{
			{1, ContextTitle, "f.raise"},
			{2, ContextTitle, "f.move"},
			{3, ContextTitle, "f.iconify"},
			{1, ContextIcon, "f.iconify"},
		},
	}
}

// ButtonFunction returns the function bound to (button, context), or "".
func (c *Config) ButtonFunction(button int, ctx Context) string {
	for _, b := range c.buttons {
		if b.button == button && b.context == ctx {
			return b.fn
		}
	}
	return ""
}

// ParseConfig reads a .twmrc-style file:
//
//	BorderWidth 2
//	TitleFont "fixed"
//	ShowIconManager
//	NoTitle { "xclock" "XBiff" }
//	Button1 = : title : f.raise
//	Button2 = : title : f.move
//
// Unknown variables are errors — a private config format can't absorb
// new keys the way the X resource database does (paper §8).
func ParseConfig(src string) (*Config, error) {
	cfg := &Config{
		BorderWidth: defaultBorder,
		TitleFont:   "fixed",
		NoTitle:     map[string]bool{},
	}
	scanner := bufio.NewScanner(strings.NewReader(src))
	lineno := 0
	for scanner.Scan() {
		lineno++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "BorderWidth"):
			v := strings.TrimSpace(strings.TrimPrefix(line, "BorderWidth"))
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("twm: line %d: bad BorderWidth %q", lineno, v)
			}
			cfg.BorderWidth = n
		case strings.HasPrefix(line, "TitleFont"):
			v := strings.TrimSpace(strings.TrimPrefix(line, "TitleFont"))
			cfg.TitleFont = strings.Trim(v, "\"")
		case line == "ShowIconManager":
			cfg.ShowIconManager = true
		case strings.HasPrefix(line, "NoTitle"):
			inner := line[len("NoTitle"):]
			inner = strings.TrimSpace(inner)
			if !strings.HasPrefix(inner, "{") || !strings.HasSuffix(inner, "}") {
				return nil, fmt.Errorf("twm: line %d: NoTitle requires { ... }", lineno)
			}
			for _, name := range strings.Fields(inner[1 : len(inner)-1]) {
				cfg.NoTitle[strings.Trim(name, "\"")] = true
			}
		case strings.HasPrefix(line, "Button"):
			b, err := parseButtonLine(line)
			if err != nil {
				return nil, fmt.Errorf("twm: line %d: %w", lineno, err)
			}
			cfg.buttons = append(cfg.buttons, b)
		default:
			return nil, fmt.Errorf("twm: line %d: unknown directive %q", lineno, line)
		}
	}
	return cfg, scanner.Err()
}

func parseButtonLine(line string) (buttonBinding, error) {
	// Button1 = : title : f.raise
	var b buttonBinding
	parts := strings.SplitN(line, "=", 2)
	numStr := strings.TrimPrefix(strings.TrimSpace(parts[0]), "Button")
	n, err := strconv.Atoi(numStr)
	if err != nil || n < 1 || n > 5 {
		return b, fmt.Errorf("bad button %q", parts[0])
	}
	if len(parts) != 2 {
		return b, fmt.Errorf("missing '=' in %q", line)
	}
	fields := strings.Split(parts[1], ":")
	if len(fields) != 3 {
		return b, fmt.Errorf("want '= : context : function' in %q", line)
	}
	ctxName := strings.TrimSpace(fields[1])
	ctx, ok := contextNames[strings.ToLower(ctxName)]
	if !ok {
		return b, fmt.Errorf("unknown context %q", ctxName)
	}
	fn := strings.TrimSpace(fields[2])
	if !strings.HasPrefix(fn, "f.") {
		return b, fmt.Errorf("unknown function %q", fn)
	}
	b.button, b.context, b.fn = n, ctx, fn
	return b, nil
}
