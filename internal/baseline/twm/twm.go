// Package twm implements a baseline window manager in the style of twm
// (LaStrange's earlier "Tom's Window Manager"), the paper's first
// comparison point: "easy to use but not very configurable". Decoration
// is a hardcoded titlebar built directly on the (simulated) Xlib layer —
// no object system, no resource database — configured through a private
// .twmrc-style file, with a fixed-appearance icon manager.
//
// It exists to reproduce the paper's evaluation claims: the direct
// window manager is faster than the toolkit-based swm (§8), and
// "different window management policies are next to impossible to
// implement" (§1) because look-and-feel lives in code.
package twm

import (
	"fmt"

	"repro/internal/degrade"
	"repro/internal/icccm"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// Hardcoded look-and-feel: this is exactly what swm was built to avoid.
const (
	TitleHeight   = 20
	FrameBorder   = 2
	IconMgrRowH   = 18
	IconMgrWidth  = 150
	defaultBorder = 2
)

// WM is a running twm instance.
type WM struct {
	server *xserver.Server
	conn   *xserver.Conn
	cfg    *Config

	root    xproto.XID
	scrW    int
	scrH    int
	clients map[xproto.XID]*Client
	byFrame map[xproto.XID]*Client
	byTitle map[xproto.XID]*Client

	iconMgr        xproto.XID
	iconMgrEntries []*Client
	byIconEntry    map[xproto.XID]*Client

	placeX, placeY int
	moveTarget     *Client
	moveDX, moveDY int

	deg *degrade.Tracker
}

// check routes a failed request through the shared degradation ledger
// (internal/degrade) instead of silently discarding it, so tests can
// observe how often the baseline degrades.
func (wm *WM) check(op string, err error) bool {
	return wm.deg.Check(op, err)
}

// Degraded reports how many requests have failed and been dropped.
func (wm *WM) Degraded() int { return wm.deg.Degraded() }

// LastError returns the most recent dropped request failure, if any.
func (wm *WM) LastError() error { return wm.deg.LastError() }

// Client is one managed window.
type Client struct {
	Win   xproto.XID
	Frame xproto.XID
	Title xproto.XID
	Name  string
	Class icccm.Class

	Iconified bool
	iconEntry xproto.XID
	FrameRect xproto.Rect
	clientW   int
	clientH   int
}

// New starts the baseline WM on the first screen.
func New(server *xserver.Server, cfg *Config) (*WM, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	wm := &WM{
		server:      server,
		conn:        server.Connect("twm"),
		cfg:         cfg,
		clients:     make(map[xproto.XID]*Client),
		byFrame:     make(map[xproto.XID]*Client),
		byTitle:     make(map[xproto.XID]*Client),
		byIconEntry: make(map[xproto.XID]*Client),
		deg:         degrade.New("twm"),
	}
	scr := server.Screens()[0]
	wm.root = scr.Root
	wm.scrW, wm.scrH = scr.Width, scr.Height
	err := wm.conn.SelectInput(wm.root,
		xproto.SubstructureRedirectMask|xproto.SubstructureNotifyMask|
			xproto.ButtonPressMask|xproto.ButtonReleaseMask)
	if err != nil {
		wm.conn.Close()
		return nil, fmt.Errorf("twm: another window manager is running: %w", err)
	}
	// The icon manager window: a fixed-appearance list, in contrast
	// with swm's user-defined icon holders.
	if cfg.ShowIconManager {
		img, err := wm.conn.CreateWindow(wm.root, xproto.Rect{
			X: wm.scrW - IconMgrWidth - 4, Y: 4, Width: IconMgrWidth, Height: IconMgrRowH,
		}, 1, xserver.WindowAttributes{OverrideRedirect: true, Label: "TwmIconMgr"})
		if err != nil {
			return nil, err
		}
		wm.iconMgr = img
	}
	return wm, nil
}

// Conn returns the WM connection.
func (wm *WM) Conn() *xserver.Conn { return wm.conn }

// Clients returns all managed clients.
func (wm *WM) Clients() []*Client {
	out := make([]*Client, 0, len(wm.clients))
	for _, c := range wm.clients {
		out = append(out, c)
	}
	return out
}

// ClientOf looks up a client by its window.
func (wm *WM) ClientOf(win xproto.XID) (*Client, bool) {
	c, ok := wm.clients[win]
	return c, ok
}

// Pump drains and processes pending events.
func (wm *WM) Pump() int {
	n := 0
	for {
		ev, ok := wm.conn.PollEvent()
		if !ok {
			return n
		}
		wm.handleEvent(ev)
		n++
	}
}

// Shutdown releases clients back to the root and closes the connection.
func (wm *WM) Shutdown() {
	for _, c := range wm.clients {
		wm.check("shutdown reparent", wm.conn.ReparentWindow(c.Win, wm.root, c.FrameRect.X, c.FrameRect.Y+TitleHeight))
		wm.check("shutdown map", wm.conn.MapWindow(c.Win))
	}
	wm.conn.Close()
}

func (wm *WM) handleEvent(ev xproto.Event) {
	switch ev.Type {
	case xproto.MapRequest:
		if c, ok := wm.clients[ev.Subwindow]; ok {
			wm.Deiconify(c)
			return
		}
		if _, err := wm.Manage(ev.Subwindow); err != nil {
			wm.check("map unmanaged", wm.conn.MapWindow(ev.Subwindow))
		}
	case xproto.ConfigureRequest:
		wm.handleConfigureRequest(ev)
	case xproto.DestroyNotify:
		if c, ok := wm.clients[ev.Subwindow]; ok {
			wm.unmanage(c)
		}
	case xproto.ButtonPress:
		wm.handleButtonPress(ev)
	case xproto.ButtonRelease:
		if wm.moveTarget != nil {
			c := wm.moveTarget
			wm.moveTarget = nil
			wm.conn.UngrabPointer()
			wm.moveFrame(c, ev.RootX-wm.moveDX, ev.RootY-wm.moveDY)
		}
	case xproto.MotionNotify:
		if wm.moveTarget != nil {
			wm.moveFrame(wm.moveTarget, ev.RootX-wm.moveDX, ev.RootY-wm.moveDY)
		}
	case xproto.PropertyNotify:
		if c, ok := wm.clients[ev.Window]; ok && wm.conn.AtomName(ev.Atom) == "WM_NAME" {
			name, ok, err := icccm.GetName(wm.conn, c.Win)
			wm.check("read WM_NAME", err)
			if ok {
				c.Name = name
				wm.check("retitle", wm.conn.SetWindowLabel(c.Title, name))
			}
		}
	}
}

// Manage adopts a window with the hardcoded decoration: one frame
// window with a title strip across the top. Everything is direct window
// calls — the "written directly on top of Xlib" style the paper
// benchmarks swm against.
func (wm *WM) Manage(win xproto.XID) (*Client, error) {
	if c, ok := wm.clients[win]; ok {
		return c, nil
	}
	g, err := wm.conn.GetGeometry(win)
	if err != nil {
		return nil, err
	}
	c := &Client{Win: win, clientW: g.Rect.Width, clientH: g.Rect.Height}
	name, okName, err := icccm.GetName(wm.conn, win)
	wm.check("read WM_NAME", err)
	if okName {
		c.Name = name
	}
	cl, okClass, err := icccm.GetClass(wm.conn, win)
	wm.check("read WM_CLASS", err)
	if okClass {
		c.Class = cl
	}
	noTitle := wm.cfg.NoTitle[c.Class.Instance] || wm.cfg.NoTitle[c.Class.Class]

	// Placement: honor requested position or cascade.
	x, y := g.Rect.X, g.Rect.Y
	if x == 0 && y == 0 {
		wm.placeX += 24
		wm.placeY += 24
		if wm.placeX+g.Rect.Width > wm.scrW || wm.placeY+g.Rect.Height > wm.scrH {
			wm.placeX, wm.placeY = 24, 24
		}
		x, y = wm.placeX, wm.placeY
	}

	titleH := TitleHeight
	if noTitle {
		titleH = 0
	}
	frameRect := xproto.Rect{
		X: x, Y: y,
		Width:  g.Rect.Width + 2*FrameBorder,
		Height: g.Rect.Height + titleH + 2*FrameBorder,
	}
	frame, err := wm.conn.CreateWindow(wm.root, frameRect, wm.cfg.BorderWidth,
		xserver.WindowAttributes{OverrideRedirect: true})
	if err != nil {
		return nil, err
	}
	// Client configure requests must route through the WM: the frame
	// (the client's new parent) selects SubstructureRedirect.
	if err := wm.conn.SelectInput(frame,
		xproto.SubstructureRedirectMask|xproto.SubstructureNotifyMask); err != nil {
		return nil, err
	}
	if !noTitle {
		title, err := wm.conn.CreateWindow(frame, xproto.Rect{
			X: FrameBorder, Y: FrameBorder,
			Width: g.Rect.Width, Height: titleH,
		}, 0, xserver.WindowAttributes{OverrideRedirect: true, Label: c.Name, Fill: '='})
		if err != nil {
			return nil, err
		}
		if err := wm.conn.SelectInput(title,
			xproto.ButtonPressMask|xproto.ButtonReleaseMask); err != nil {
			return nil, err
		}
		if err := wm.conn.MapWindow(title); err != nil {
			return nil, err
		}
		c.Title = title
		wm.byTitle[title] = c
	}
	if err := wm.conn.ChangeSaveSet(win, true); err != nil {
		return nil, err
	}
	if err := wm.conn.ReparentWindow(win, frame, FrameBorder, FrameBorder+titleH); err != nil {
		return nil, err
	}
	if err := wm.conn.MapWindow(win); err != nil {
		return nil, err
	}
	if err := wm.conn.MapWindow(frame); err != nil {
		return nil, err
	}
	if err := wm.conn.SelectInput(win,
		xproto.PropertyChangeMask|xproto.StructureNotifyMask); err != nil {
		return nil, err
	}
	wm.check("set normal state", icccm.SetState(wm.conn, win, icccm.State{State: xproto.NormalState}))
	c.Frame = frame
	c.FrameRect = frameRect
	wm.clients[win] = c
	wm.byFrame[frame] = c
	return c, nil
}

func (wm *WM) unmanage(c *Client) {
	if c.iconEntry != xproto.None {
		wm.removeIconEntry(c)
	}
	delete(wm.clients, c.Win)
	delete(wm.byFrame, c.Frame)
	if c.Title != xproto.None {
		delete(wm.byTitle, c.Title)
	}
	wm.check("destroy frame", wm.conn.DestroyWindow(c.Frame))
}

func (wm *WM) moveFrame(c *Client, x, y int) {
	c.FrameRect.X, c.FrameRect.Y = x, y
	wm.check("move frame", wm.conn.MoveWindow(c.Frame, x, y))
	wm.check("synthetic configure", icccm.SendSyntheticConfigureNotify(wm.conn, c.Win,
		x+FrameBorder, y+FrameBorder+TitleHeight, c.clientW, c.clientH))
}

func (wm *WM) handleConfigureRequest(ev xproto.Event) {
	c, ok := wm.clients[ev.Subwindow]
	if !ok {
		wm.check("pass-through configure", wm.conn.ConfigureWindow(ev.Subwindow, xproto.WindowChanges{
			Mask: ev.ValueMask, X: ev.GX, Y: ev.GY,
			Width: ev.Width, Height: ev.Height, BorderWidth: ev.BorderWidth,
			Sibling: ev.Sibling, StackMode: ev.StackMode,
		}))
		return
	}
	if ev.ValueMask&(xproto.CWWidth|xproto.CWHeight) != 0 {
		w, h := c.clientW, c.clientH
		if ev.ValueMask&xproto.CWWidth != 0 {
			w = ev.Width
		}
		if ev.ValueMask&xproto.CWHeight != 0 {
			h = ev.Height
		}
		wm.Resize(c, w, h)
	}
	if ev.ValueMask&(xproto.CWX|xproto.CWY) != 0 {
		x, y := c.FrameRect.X, c.FrameRect.Y
		if ev.ValueMask&xproto.CWX != 0 {
			x = ev.GX
		}
		if ev.ValueMask&xproto.CWY != 0 {
			y = ev.GY
		}
		wm.moveFrame(c, x, y)
	}
}

// Resize resizes the client and its hardcoded frame.
func (wm *WM) Resize(c *Client, w, h int) {
	c.clientW, c.clientH = w, h
	titleH := TitleHeight
	if c.Title == xproto.None {
		titleH = 0
	}
	wm.check("resize client", wm.conn.ResizeWindow(c.Win, w, h))
	c.FrameRect.Width = w + 2*FrameBorder
	c.FrameRect.Height = h + titleH + 2*FrameBorder
	wm.check("resize frame", wm.conn.ResizeWindow(c.Frame, c.FrameRect.Width, c.FrameRect.Height))
	if c.Title != xproto.None {
		wm.check("resize title", wm.conn.ResizeWindow(c.Title, w, titleH))
	}
}

// handleButtonPress implements the *hardcoded* twm policy, driven by
// the config's button-function table.
func (wm *WM) handleButtonPress(ev xproto.Event) {
	var c *Client
	ctxKind := ContextRoot
	if cc, ok := wm.byTitle[ev.Window]; ok {
		c, ctxKind = cc, ContextTitle
	} else if cc, ok := wm.byFrame[ev.Window]; ok {
		c, ctxKind = cc, ContextWindow
	} else if cc, ok := wm.byIconEntry[ev.Window]; ok {
		c, ctxKind = cc, ContextIcon
	}
	fn := wm.cfg.ButtonFunction(ev.Button, ctxKind)
	wm.runFunction(fn, c, ev)
}

func (wm *WM) runFunction(fn string, c *Client, ev xproto.Event) {
	switch fn {
	case "f.raise":
		if c != nil {
			wm.check("raise", wm.conn.RaiseWindow(c.Frame))
		}
	case "f.lower":
		if c != nil {
			wm.check("lower", wm.conn.LowerWindow(c.Frame))
		}
	case "f.iconify":
		if c != nil {
			if c.Iconified {
				wm.Deiconify(c)
			} else {
				wm.Iconify(c)
			}
		}
	case "f.move":
		if c != nil {
			wm.moveTarget = c
			wm.moveDX = ev.RootX - c.FrameRect.X
			wm.moveDY = ev.RootY - c.FrameRect.Y
			wm.check("grab pointer", wm.conn.GrabPointer(wm.root,
				xproto.PointerMotionMask|xproto.ButtonReleaseMask))
		}
	case "f.raiselower": //swm:ok twm dispatches its own function set; f.raiselower is baseline-only
		if c != nil {
			wm.check("raiselower", wm.conn.RaiseWindow(c.Frame))
		}
	}
}

// Iconify hides the frame and adds a fixed-appearance entry to the icon
// manager (the feature swm's icon holders generalize).
func (wm *WM) Iconify(c *Client) {
	if c.Iconified {
		return
	}
	wm.check("unmap frame", wm.conn.UnmapWindow(c.Frame))
	c.Iconified = true
	wm.check("set iconic state", icccm.SetState(wm.conn, c.Win, icccm.State{State: xproto.IconicState}))
	if wm.iconMgr == xproto.None {
		return
	}
	entry, err := wm.conn.CreateWindow(wm.iconMgr, xproto.Rect{
		X: 0, Y: len(wm.iconMgrEntries) * IconMgrRowH,
		Width: IconMgrWidth, Height: IconMgrRowH,
	}, 0, xserver.WindowAttributes{OverrideRedirect: true, Label: c.Name})
	if err != nil {
		return
	}
	wm.check("icon entry input", wm.conn.SelectInput(entry, xproto.ButtonPressMask))
	wm.check("map icon entry", wm.conn.MapWindow(entry))
	c.iconEntry = entry
	wm.byIconEntry[entry] = c
	wm.iconMgrEntries = append(wm.iconMgrEntries, c)
	wm.layoutIconMgr()
}

// Deiconify restores a client and removes its icon manager entry.
func (wm *WM) Deiconify(c *Client) {
	if !c.Iconified {
		return
	}
	wm.check("map frame", wm.conn.MapWindow(c.Frame))
	c.Iconified = false
	wm.check("set normal state", icccm.SetState(wm.conn, c.Win, icccm.State{State: xproto.NormalState}))
	wm.removeIconEntry(c)
}

func (wm *WM) removeIconEntry(c *Client) {
	if c.iconEntry == xproto.None {
		return
	}
	wm.check("destroy icon entry", wm.conn.DestroyWindow(c.iconEntry))
	delete(wm.byIconEntry, c.iconEntry)
	c.iconEntry = xproto.None
	entries := wm.iconMgrEntries[:0]
	for _, e := range wm.iconMgrEntries {
		if e != c {
			entries = append(entries, e)
		}
	}
	wm.iconMgrEntries = entries
	wm.layoutIconMgr()
}

func (wm *WM) layoutIconMgr() {
	if wm.iconMgr == xproto.None {
		return
	}
	h := len(wm.iconMgrEntries) * IconMgrRowH
	if h == 0 {
		h = IconMgrRowH
		wm.check("unmap icon manager", wm.conn.UnmapWindow(wm.iconMgr))
	} else {
		wm.check("map icon manager", wm.conn.MapWindow(wm.iconMgr))
	}
	wm.check("resize icon manager", wm.conn.ResizeWindow(wm.iconMgr, IconMgrWidth, h))
	for i, c := range wm.iconMgrEntries {
		wm.check("move icon entry", wm.conn.MoveWindow(c.iconEntry, 0, i*IconMgrRowH))
	}
}

// IconManagerEntries reports the icon manager contents (tests).
func (wm *WM) IconManagerEntries() []*Client {
	return append([]*Client(nil), wm.iconMgrEntries...)
}
