package twm

import (
	"testing"

	"repro/internal/clients"
	"repro/internal/icccm"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func newTwm(t *testing.T, cfg *Config) (*xserver.Server, *WM) {
	t.Helper()
	s := xserver.NewServer()
	wm, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, wm
}

func launch(t *testing.T, s *xserver.Server, wm *WM, cfg clients.Config) (*clients.App, *Client) {
	t.Helper()
	app, err := clients.Launch(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		t.Fatalf("client %s not managed", cfg.Instance)
	}
	return app, c
}

func TestManageHardcodedDecoration(t *testing.T) {
	s, wm := newTwm(t, nil)
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Name: "shell", Width: 300, Height: 200})
	if c.Frame == xproto.None || c.Title == xproto.None {
		t.Fatal("frame/title not created")
	}
	_, parent, _, _ := app.Conn.QueryTree(app.Win)
	if parent != c.Frame {
		t.Error("client not reparented into the frame")
	}
	// Hardcoded geometry: title strip height is a compile-time constant.
	g, _ := wm.conn.GetGeometry(c.Title)
	if g.Rect.Height != TitleHeight {
		t.Errorf("title height = %d, want the hardcoded %d", g.Rect.Height, TitleHeight)
	}
	if c.FrameRect.Height != 200+TitleHeight+2*FrameBorder {
		t.Errorf("frame height = %d", c.FrameRect.Height)
	}
	st, _, _ := icccm.GetState(wm.conn, app.Win)
	if st.State != xproto.NormalState {
		t.Error("WM_STATE not set")
	}
}

func TestNoTitleList(t *testing.T) {
	cfg, err := ParseConfig(`NoTitle { "xclock" }`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShowIconManager = true
	s, wm := newTwm(t, cfg)
	_, c := launch(t, s, wm, clients.Config{Instance: "xclock", Class: "XClock", Width: 120, Height: 120})
	if c.Title != xproto.None {
		t.Error("NoTitle client got a titlebar")
	}
	if c.FrameRect.Height != 120+2*FrameBorder {
		t.Errorf("frame height = %d", c.FrameRect.Height)
	}
}

func TestIconManagerFixedAppearance(t *testing.T) {
	s, wm := newTwm(t, nil)
	_, c1 := launch(t, s, wm, clients.Config{Instance: "a", Class: "A", Width: 100, Height: 100})
	_, c2 := launch(t, s, wm, clients.Config{Instance: "b", Class: "B", Width: 100, Height: 100})
	wm.Iconify(c1)
	wm.Iconify(c2)
	entries := wm.IconManagerEntries()
	if len(entries) != 2 {
		t.Fatalf("%d icon manager entries, want 2", len(entries))
	}
	// Fixed-appearance rows, stacked at fixed height.
	g1, _ := wm.conn.GetGeometry(entries[0].iconEntry)
	g2, _ := wm.conn.GetGeometry(entries[1].iconEntry)
	if g1.Rect.Height != IconMgrRowH || g2.Rect.Y != IconMgrRowH {
		t.Errorf("entry rows wrong: %v %v", g1.Rect, g2.Rect)
	}
	wm.Deiconify(c1)
	if len(wm.IconManagerEntries()) != 1 {
		t.Error("deiconified entry not removed")
	}
}

func TestTitleClickRaises(t *testing.T) {
	s, wm := newTwm(t, nil)
	_, c1 := launch(t, s, wm, clients.Config{Instance: "a", Class: "A", Width: 200, Height: 200, X: 100, Y: 100})
	launch(t, s, wm, clients.Config{Instance: "b", Class: "B", Width: 200, Height: 200, X: 150, Y: 150})
	// Click c1's title (default: Button1 raises).
	rx, ry, _, _ := wm.conn.TranslateCoordinates(c1.Title, s.Screens()[0].Root, 2, 2)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button1, 0)
	s.FakeButtonRelease(xproto.Button1, 0)
	wm.Pump()
	_, _, children, _ := wm.conn.QueryTree(s.Screens()[0].Root)
	var topFrame xproto.XID
	for _, ch := range children {
		if _, ok := wm.byFrame[ch]; ok {
			topFrame = ch
		}
	}
	if topFrame != c1.Frame {
		t.Error("title click did not raise")
	}
}

func TestConfigureRequestHonored(t *testing.T) {
	s, wm := newTwm(t, nil)
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 300, Height: 200})
	if err := app.Resize(400, 300); err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	g, _ := app.Conn.GetGeometry(app.Win)
	if g.Rect.Width != 400 {
		t.Errorf("client width = %d", g.Rect.Width)
	}
	if c.FrameRect.Width != 400+2*FrameBorder {
		t.Errorf("frame width = %d", c.FrameRect.Width)
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(`
# comment
BorderWidth 3
TitleFont "lucida-12"
ShowIconManager
NoTitle { "xclock" "XBiff" }
Button1 = : title : f.raise
Button3 = : window : f.lower
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BorderWidth != 3 || cfg.TitleFont != "lucida-12" || !cfg.ShowIconManager {
		t.Errorf("%+v", cfg)
	}
	if !cfg.NoTitle["xclock"] || !cfg.NoTitle["XBiff"] {
		t.Error("NoTitle list wrong")
	}
	if cfg.ButtonFunction(1, ContextTitle) != "f.raise" {
		t.Error("button binding lost")
	}
	if cfg.ButtonFunction(3, ContextWindow) != "f.lower" {
		t.Error("window binding lost")
	}
	if cfg.ButtonFunction(2, ContextTitle) != "" {
		t.Error("phantom binding")
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"BorderWidth abc",
		"NoTitle xclock",
		"Button9 = : title : f.raise",
		"Button1 = : nowhere : f.raise",
		"Button1 = : title : raise",
		// The paper's configurability point: unknown directives are hard
		// errors in a private config format.
		"VirtualDesktop 4x4",
	}
	for _, src := range bad {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("ParseConfig(%q) accepted", src)
		}
	}
}

func TestSecondWMRejected(t *testing.T) {
	s, _ := newTwm(t, nil)
	if _, err := New(s, nil); err == nil {
		t.Error("second WM accepted")
	}
}

func TestShutdownReleasesClients(t *testing.T) {
	s, wm := newTwm(t, nil)
	app, _ := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 100, Height: 100})
	wm.Shutdown()
	attrs, err := app.Conn.GetWindowAttributes(app.Win)
	if err != nil {
		t.Fatalf("client died with WM: %v", err)
	}
	if attrs.MapState != xproto.IsViewable {
		t.Error("client not viewable after WM shutdown")
	}
}

func TestInteractiveMove(t *testing.T) {
	s, wm := newTwm(t, nil)
	_, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 200, Height: 150, X: 100, Y: 100})
	// Button2 on the title starts a move (default config).
	rx, ry, _, _ := wm.conn.TranslateCoordinates(c.Title, s.Screens()[0].Root, 5, 5)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button2, 0)
	wm.Pump()
	s.FakeMotion(rx+60, ry+40)
	wm.Pump()
	s.FakeButtonRelease(xproto.Button2, 0)
	wm.Pump()
	if c.FrameRect.X != 160 || c.FrameRect.Y != 140 {
		t.Errorf("frame at (%d,%d), want (160,140)", c.FrameRect.X, c.FrameRect.Y)
	}
}

func TestIconEntryClickDeiconifies(t *testing.T) {
	s, wm := newTwm(t, nil)
	_, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 200, Height: 150, X: 300, Y: 300})
	wm.Iconify(c)
	entry := c.iconEntry
	rx, ry, _, _ := wm.conn.TranslateCoordinates(entry, s.Screens()[0].Root, 3, 3)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button1, 0)
	s.FakeButtonRelease(xproto.Button1, 0)
	wm.Pump()
	if c.Iconified {
		t.Error("icon manager entry click did not toggle iconify")
	}
}

func TestWMNameUpdatesTitle(t *testing.T) {
	s, wm := newTwm(t, nil)
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Name: "one", Width: 100, Height: 100})
	if err := app.SetName("two"); err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	if c.Name != "two" {
		t.Errorf("name = %q", c.Name)
	}
}

func TestDestroyedClientUnmanaged(t *testing.T) {
	s, wm := newTwm(t, nil)
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 100, Height: 100})
	wm.Iconify(c)
	app.Close()
	wm.Pump()
	if _, ok := wm.ClientOf(app.Win); ok {
		t.Error("destroyed client still managed")
	}
	if len(wm.IconManagerEntries()) != 0 {
		t.Error("icon manager entry leaked")
	}
}

func TestClientsAccessor(t *testing.T) {
	s, wm := newTwm(t, nil)
	launch(t, s, wm, clients.Config{Instance: "a", Class: "A", Width: 50, Height: 50})
	launch(t, s, wm, clients.Config{Instance: "b", Class: "B", Width: 50, Height: 50})
	if len(wm.Clients()) != 2 {
		t.Errorf("Clients() = %d", len(wm.Clients()))
	}
	if wm.Conn() == nil {
		t.Error("Conn() nil")
	}
}
