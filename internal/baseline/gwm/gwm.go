package gwm

import (
	"fmt"

	"repro/internal/degrade"
	"repro/internal/icccm"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// DefaultPolicy is the built-in WOOL policy program: the decoration
// parameters and all event behavior are Lisp. Implementing a different
// look-and-feel means writing a different program — the paper's point
// about gwm requiring "command of the Lisp language".
const DefaultPolicy = `
; gwm default policy
(define title-height 18)
(define frame-border 2)

; (describe-window name class) -> (title-height frame-border titled?)
(defun describe-window (name class)
  (if (= class "XClock")
      (list 0 frame-border nil)        ; clocks get no titlebar
      (list title-height frame-border t)))

; (handle-button button context) -> action symbol
(defun handle-button (button context)
  (if (= context 'title)
      (if (= button 1) 'raise
        (if (= button 2) 'move
          (if (= button 3) 'iconify 'none)))
      (if (= context 'icon)
          (if (= button 1) 'deiconify 'none)
          'none)))
`

// WM is a running gwm instance. Every managed window and every event
// round-trips through the interpreter.
type WM struct {
	server *xserver.Server
	conn   *xserver.Conn
	env    *Env

	root    xproto.XID
	clients map[xproto.XID]*Client
	byFrame map[xproto.XID]*Client
	byTitle map[xproto.XID]*Client
	byIcon  map[xproto.XID]*Client

	placeX, placeY int
	scrW, scrH     int

	deg *degrade.Tracker
}

// check routes a failed request through the shared degradation ledger
// (internal/degrade) instead of silently discarding it, so tests can
// observe how often the baseline degrades.
func (wm *WM) check(op string, err error) bool {
	return wm.deg.Check(op, err)
}

// Degraded reports how many requests have failed and been dropped.
func (wm *WM) Degraded() int { return wm.deg.Degraded() }

// LastError returns the most recent dropped request failure, if any.
func (wm *WM) LastError() error { return wm.deg.LastError() }

// Client is one managed window.
type Client struct {
	Win         xproto.XID
	Frame       xproto.XID
	Title       xproto.XID
	IconWin     xproto.XID
	Name        string
	Class       icccm.Class
	Iconified   bool
	FrameRect   xproto.Rect
	titleHeight int
	frameBorder int
	clientW     int
	clientH     int
}

// New starts gwm with the given WOOL policy program ("" uses
// DefaultPolicy).
func New(server *xserver.Server, policy string) (*WM, error) {
	if policy == "" {
		policy = DefaultPolicy
	}
	wm := &WM{
		server:  server,
		conn:    server.Connect("gwm"),
		env:     NewEnv(),
		clients: make(map[xproto.XID]*Client),
		byFrame: make(map[xproto.XID]*Client),
		byTitle: make(map[xproto.XID]*Client),
		byIcon:  make(map[xproto.XID]*Client),
		deg:     degrade.New("gwm"),
	}
	scr := server.Screens()[0]
	wm.root = scr.Root
	wm.scrW, wm.scrH = scr.Width, scr.Height
	wm.installPrimitives()
	if _, err := EvalString(wm.env, policy); err != nil {
		wm.conn.Close()
		return nil, fmt.Errorf("gwm: policy program: %w", err)
	}
	err := wm.conn.SelectInput(wm.root,
		xproto.SubstructureRedirectMask|xproto.SubstructureNotifyMask|
			xproto.ButtonPressMask|xproto.ButtonReleaseMask)
	if err != nil {
		wm.conn.Close()
		return nil, fmt.Errorf("gwm: another window manager is running: %w", err)
	}
	return wm, nil
}

// Env exposes the interpreter environment (tests poke at policy).
func (wm *WM) Env() *Env { return wm.env }

// Conn returns the WM connection.
func (wm *WM) Conn() *xserver.Conn { return wm.conn }

// ClientOf looks up a managed client.
func (wm *WM) ClientOf(win xproto.XID) (*Client, bool) {
	c, ok := wm.clients[win]
	return c, ok
}

// installPrimitives registers the WM primitives policy programs use.
func (wm *WM) installPrimitives() {
	def := func(name string, fn Builtin) { wm.env.Define(Sym(name), fn) }
	def("raise-window", func(_ *Env, args []Value) (Value, error) {
		c, err := wm.clientArg(args)
		if err != nil {
			return nil, err
		}
		return T, wm.conn.RaiseWindow(c.Frame)
	})
	def("lower-window", func(_ *Env, args []Value) (Value, error) {
		c, err := wm.clientArg(args)
		if err != nil {
			return nil, err
		}
		return T, wm.conn.LowerWindow(c.Frame)
	})
	def("move-window", func(_ *Env, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("gwm: move-window wants (win x y)")
		}
		c, err := wm.clientArg(args[:1])
		if err != nil {
			return nil, err
		}
		x, xok := args[1].(Num)
		y, yok := args[2].(Num)
		if !xok || !yok {
			return nil, fmt.Errorf("gwm: move-window wants numeric coordinates")
		}
		wm.moveFrame(c, int(x), int(y))
		return T, nil
	})
	def("window-name", func(_ *Env, args []Value) (Value, error) {
		c, err := wm.clientArg(args)
		if err != nil {
			return nil, err
		}
		return Str(c.Name), nil
	})
}

func (wm *WM) clientArg(args []Value) (*Client, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("gwm: missing window argument")
	}
	n, ok := args[0].(Num)
	if !ok {
		return nil, fmt.Errorf("gwm: %v is not a window id", args[0])
	}
	c, ok := wm.clients[xproto.XID(n)]
	if !ok {
		return nil, fmt.Errorf("gwm: window %d not managed", n)
	}
	return c, nil
}

// Pump drains pending events.
func (wm *WM) Pump() int {
	n := 0
	for {
		ev, ok := wm.conn.PollEvent()
		if !ok {
			return n
		}
		wm.handleEvent(ev)
		n++
	}
}

// Shutdown releases clients and closes the connection.
func (wm *WM) Shutdown() {
	for _, c := range wm.clients {
		wm.check("shutdown reparent", wm.conn.ReparentWindow(c.Win, wm.root, c.FrameRect.X, c.FrameRect.Y))
		wm.check("shutdown map", wm.conn.MapWindow(c.Win))
	}
	wm.conn.Close()
}

func (wm *WM) handleEvent(ev xproto.Event) {
	switch ev.Type {
	case xproto.MapRequest:
		if c, ok := wm.clients[ev.Subwindow]; ok {
			wm.Deiconify(c)
			return
		}
		if _, err := wm.Manage(ev.Subwindow); err != nil {
			wm.check("map unmanaged", wm.conn.MapWindow(ev.Subwindow))
		}
	case xproto.DestroyNotify:
		if c, ok := wm.clients[ev.Subwindow]; ok {
			wm.unmanage(c)
		}
	case xproto.ButtonPress:
		wm.handleButtonPress(ev)
	case xproto.ConfigureRequest:
		wm.handleConfigureRequest(ev)
	}
}

// Manage asks the policy program how to decorate, then builds the frame
// accordingly.
func (wm *WM) Manage(win xproto.XID) (*Client, error) {
	if c, ok := wm.clients[win]; ok {
		return c, nil
	}
	g, err := wm.conn.GetGeometry(win)
	if err != nil {
		return nil, err
	}
	c := &Client{Win: win, clientW: g.Rect.Width, clientH: g.Rect.Height}
	name, okName, err := icccm.GetName(wm.conn, win)
	wm.check("read WM_NAME", err)
	if okName {
		c.Name = name
	}
	cl, okClass, err := icccm.GetClass(wm.conn, win)
	wm.check("read WM_CLASS", err)
	if okClass {
		c.Class = cl
	}

	// Policy decision via Lisp: (describe-window name class).
	fn, ok := wm.env.Get("describe-window")
	if !ok {
		return nil, fmt.Errorf("gwm: policy defines no describe-window")
	}
	desc, err := Apply(wm.env, fn, []Value{Str(c.Name), Str(c.Class.Class)})
	if err != nil {
		return nil, fmt.Errorf("gwm: describe-window: %w", err)
	}
	dl, ok := desc.(List)
	if !ok || len(dl) < 2 {
		return nil, fmt.Errorf("gwm: describe-window returned %v", desc)
	}
	th, _ := dl[0].(Num)
	fb, _ := dl[1].(Num)
	c.titleHeight = int(th)
	c.frameBorder = int(fb)

	x, y := g.Rect.X, g.Rect.Y
	if x == 0 && y == 0 {
		wm.placeX += 24
		wm.placeY += 24
		if wm.placeX+g.Rect.Width > wm.scrW || wm.placeY+g.Rect.Height > wm.scrH {
			wm.placeX, wm.placeY = 24, 24
		}
		x, y = wm.placeX, wm.placeY
	}
	c.FrameRect = xproto.Rect{
		X: x, Y: y,
		Width:  g.Rect.Width + 2*c.frameBorder,
		Height: g.Rect.Height + c.titleHeight + 2*c.frameBorder,
	}
	frame, err := wm.conn.CreateWindow(wm.root, c.FrameRect, 1,
		xserver.WindowAttributes{OverrideRedirect: true})
	if err != nil {
		return nil, err
	}
	// Client configure requests must route through the WM: the frame
	// (the client's new parent) selects SubstructureRedirect.
	if err := wm.conn.SelectInput(frame,
		xproto.SubstructureRedirectMask|xproto.SubstructureNotifyMask); err != nil {
		return nil, err
	}
	if c.titleHeight > 0 {
		title, err := wm.conn.CreateWindow(frame, xproto.Rect{
			X: c.frameBorder, Y: c.frameBorder,
			Width: g.Rect.Width, Height: c.titleHeight,
		}, 0, xserver.WindowAttributes{OverrideRedirect: true, Label: c.Name})
		if err != nil {
			return nil, err
		}
		if err := wm.conn.SelectInput(title, xproto.ButtonPressMask); err != nil {
			return nil, err
		}
		if err := wm.conn.MapWindow(title); err != nil {
			return nil, err
		}
		c.Title = title
		wm.byTitle[title] = c
	}
	if err := wm.conn.ChangeSaveSet(win, true); err != nil {
		return nil, err
	}
	if err := wm.conn.ReparentWindow(win, frame, c.frameBorder, c.frameBorder+c.titleHeight); err != nil {
		return nil, err
	}
	if err := wm.conn.MapWindow(win); err != nil {
		return nil, err
	}
	if err := wm.conn.MapWindow(frame); err != nil {
		return nil, err
	}
	wm.check("set normal state", icccm.SetState(wm.conn, win, icccm.State{State: xproto.NormalState}))
	c.Frame = frame
	wm.clients[win] = c
	wm.byFrame[frame] = c
	return c, nil
}

func (wm *WM) unmanage(c *Client) {
	delete(wm.clients, c.Win)
	delete(wm.byFrame, c.Frame)
	if c.Title != xproto.None {
		delete(wm.byTitle, c.Title)
	}
	if c.IconWin != xproto.None {
		delete(wm.byIcon, c.IconWin)
		wm.check("destroy icon", wm.conn.DestroyWindow(c.IconWin))
	}
	wm.check("destroy frame", wm.conn.DestroyWindow(c.Frame))
}

func (wm *WM) moveFrame(c *Client, x, y int) {
	c.FrameRect.X, c.FrameRect.Y = x, y
	wm.check("move frame", wm.conn.MoveWindow(c.Frame, x, y))
	wm.check("synthetic configure", icccm.SendSyntheticConfigureNotify(wm.conn, c.Win,
		x+c.frameBorder, y+c.frameBorder+c.titleHeight, c.clientW, c.clientH))
}

func (wm *WM) handleConfigureRequest(ev xproto.Event) {
	c, ok := wm.clients[ev.Subwindow]
	if !ok {
		wm.check("pass-through configure", wm.conn.ConfigureWindow(ev.Subwindow, xproto.WindowChanges{
			Mask: ev.ValueMask, X: ev.GX, Y: ev.GY,
			Width: ev.Width, Height: ev.Height,
		}))
		return
	}
	if ev.ValueMask&(xproto.CWWidth|xproto.CWHeight) != 0 {
		w, h := c.clientW, c.clientH
		if ev.ValueMask&xproto.CWWidth != 0 {
			w = ev.Width
		}
		if ev.ValueMask&xproto.CWHeight != 0 {
			h = ev.Height
		}
		c.clientW, c.clientH = w, h
		wm.check("resize client", wm.conn.ResizeWindow(c.Win, w, h))
		c.FrameRect.Width = w + 2*c.frameBorder
		c.FrameRect.Height = h + c.titleHeight + 2*c.frameBorder
		wm.check("resize frame", wm.conn.ResizeWindow(c.Frame, c.FrameRect.Width, c.FrameRect.Height))
		if c.Title != xproto.None {
			wm.check("resize title", wm.conn.ResizeWindow(c.Title, w, c.titleHeight))
		}
	}
	if ev.ValueMask&(xproto.CWX|xproto.CWY) != 0 {
		x, y := c.FrameRect.X, c.FrameRect.Y
		if ev.ValueMask&xproto.CWX != 0 {
			x = ev.GX
		}
		if ev.ValueMask&xproto.CWY != 0 {
			y = ev.GY
		}
		wm.moveFrame(c, x, y)
	}
}

// handleButtonPress routes the decision through (handle-button ...) in
// the policy program, then performs the returned action.
func (wm *WM) handleButtonPress(ev xproto.Event) {
	var c *Client
	context := Sym("root")
	if cc, ok := wm.byTitle[ev.Window]; ok {
		c, context = cc, "title"
	} else if cc, ok := wm.byFrame[ev.Window]; ok {
		c, context = cc, "window"
	} else if cc, ok := wm.byIcon[ev.Window]; ok {
		c, context = cc, "icon"
	}
	fn, ok := wm.env.Get("handle-button")
	if !ok {
		return
	}
	action, err := Apply(wm.env, fn, []Value{Num(ev.Button), context})
	if err != nil {
		return
	}
	sym, _ := action.(Sym)
	switch sym {
	case "raise":
		if c != nil {
			wm.check("raise", wm.conn.RaiseWindow(c.Frame))
		}
	case "lower":
		if c != nil {
			wm.check("lower", wm.conn.LowerWindow(c.Frame))
		}
	case "iconify":
		if c != nil {
			wm.Iconify(c)
		}
	case "deiconify":
		if c != nil {
			wm.Deiconify(c)
		}
	case "move":
		// Simplified: a policy-driven move jumps the frame to the
		// pointer (gwm's outline move is out of scope here).
		if c != nil {
			wm.moveFrame(c, ev.RootX, ev.RootY)
		}
	}
}

// Iconify hides the frame behind a simple icon window.
func (wm *WM) Iconify(c *Client) {
	if c.Iconified {
		return
	}
	wm.check("unmap frame", wm.conn.UnmapWindow(c.Frame))
	if c.IconWin == xproto.None {
		icon, err := wm.conn.CreateWindow(wm.root, xproto.Rect{
			X: 8, Y: 8, Width: 64, Height: 64,
		}, 1, xserver.WindowAttributes{OverrideRedirect: true, Label: c.Name})
		if err == nil {
			wm.check("icon input", wm.conn.SelectInput(icon, xproto.ButtonPressMask))
			c.IconWin = icon
			wm.byIcon[icon] = c
		}
	}
	if c.IconWin != xproto.None {
		wm.check("map icon", wm.conn.MapWindow(c.IconWin))
	}
	c.Iconified = true
	wm.check("set iconic state", icccm.SetState(wm.conn, c.Win, icccm.State{State: xproto.IconicState}))
}

// Deiconify restores a client.
func (wm *WM) Deiconify(c *Client) {
	if !c.Iconified {
		return
	}
	if c.IconWin != xproto.None {
		wm.check("unmap icon", wm.conn.UnmapWindow(c.IconWin))
	}
	wm.check("map frame", wm.conn.MapWindow(c.Frame))
	c.Iconified = false
	wm.check("set normal state", icccm.SetState(wm.conn, c.Win, icccm.State{State: xproto.NormalState}))
}
