package gwm

import (
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string) Value {
	t.Helper()
	env := NewEnv()
	v, err := EvalString(env, src)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := map[string]Num{
		"(+ 1 2 3)":     6,
		"(* 2 3 4)":     24,
		"(- 10 3 2)":    5,
		"(- 5)":         -5,
		"(/ 20 4)":      5,
		"(+ (* 2 3) 1)": 7,
		"(+ )":          0,
		"(* )":          1,
	}
	for src, want := range cases {
		if got := evalOK(t, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestComparisons(t *testing.T) {
	trueCases := []string{"(< 1 2)", "(> 2 1)", "(<= 2 2)", "(>= 3 2)", "(= 4 4)", `(= "a" "a")`, "(= 'x 'x)"}
	for _, src := range trueCases {
		if !Truthy(evalOK(t, src)) {
			t.Errorf("%s should be true", src)
		}
	}
	falseCases := []string{"(< 2 1)", "(= 1 2)", `(= "a" "b")`, "(= 'x 'y)"}
	for _, src := range falseCases {
		if Truthy(evalOK(t, src)) {
			t.Errorf("%s should be false", src)
		}
	}
}

func TestListOps(t *testing.T) {
	if got := Format(evalOK(t, "(cons 1 (list 2 3))")); got != "(1 2 3)" {
		t.Errorf("cons: %s", got)
	}
	if got := evalOK(t, "(car (list 7 8))"); got != Num(7) {
		t.Errorf("car: %v", got)
	}
	if got := Format(evalOK(t, "(cdr (list 7 8 9))")); got != "(8 9)" {
		t.Errorf("cdr: %s", got)
	}
	if got := evalOK(t, "(length (list 1 2 3 4))"); got != Num(4) {
		t.Errorf("length: %v", got)
	}
	if got := evalOK(t, "(car ())"); !valueEqual(got, Nil) {
		t.Errorf("car of empty: %v", got)
	}
}

func TestQuote(t *testing.T) {
	if got := Format(evalOK(t, "'(a b c)")); got != "(a b c)" {
		t.Errorf("quote: %s", got)
	}
	if got := evalOK(t, "'sym"); got != Sym("sym") {
		t.Errorf("quote sym: %v", got)
	}
}

func TestIfAndTruth(t *testing.T) {
	if got := evalOK(t, "(if (< 1 2) 'yes 'no)"); got != Sym("yes") {
		t.Errorf("if true: %v", got)
	}
	if got := evalOK(t, "(if (< 2 1) 'yes 'no)"); got != Sym("no") {
		t.Errorf("if false: %v", got)
	}
	if got := evalOK(t, "(if () 'yes 'no)"); got != Sym("no") {
		t.Error("empty list should be false")
	}
	if got := evalOK(t, "(if 0 'yes 'no)"); got != Sym("yes") {
		t.Error("0 is true in WOOL")
	}
	if got := evalOK(t, "(if (< 2 1) 'yes)"); !valueEqual(got, Nil) {
		t.Errorf("if without else: %v", got)
	}
}

func TestDefineAndSetq(t *testing.T) {
	v := evalOK(t, "(define x 10) (setq x (+ x 5)) x")
	if v != Num(15) {
		t.Errorf("x = %v", v)
	}
}

func TestLambdaAndDefun(t *testing.T) {
	v := evalOK(t, "(defun sq (n) (* n n)) (sq 7)")
	if v != Num(49) {
		t.Errorf("sq 7 = %v", v)
	}
	v = evalOK(t, "((lambda (a b) (+ a b)) 3 4)")
	if v != Num(7) {
		t.Errorf("lambda = %v", v)
	}
}

func TestClosure(t *testing.T) {
	v := evalOK(t, `
(defun make-adder (n) (lambda (m) (+ n m)))
(define add5 (make-adder 5))
(add5 10)`)
	if v != Num(15) {
		t.Errorf("closure = %v", v)
	}
}

func TestLet(t *testing.T) {
	v := evalOK(t, "(define x 1) (let ((x 10) (y 20)) (+ x y))")
	if v != Num(30) {
		t.Errorf("let = %v", v)
	}
	// Outer x untouched.
	if evalOK(t, "(define x 1) (let ((x 10)) x) x") != Num(1) {
		t.Error("let leaked bindings")
	}
}

func TestWhile(t *testing.T) {
	v := evalOK(t, `
(define i 0)
(define sum 0)
(while (< i 5)
  (setq sum (+ sum i))
  (setq i (+ i 1)))
sum`)
	if v != Num(10) {
		t.Errorf("while sum = %v", v)
	}
}

func TestWhileIterationLimit(t *testing.T) {
	env := NewEnv()
	if _, err := EvalString(env, "(while t 1)"); err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestAndOr(t *testing.T) {
	if got := evalOK(t, "(and 1 2 3)"); got != Num(3) {
		t.Errorf("and = %v", got)
	}
	if Truthy(evalOK(t, "(and 1 () 3)")) {
		t.Error("and with false should be false")
	}
	if got := evalOK(t, "(or () 2)"); got != Num(2) {
		t.Errorf("or = %v", got)
	}
}

func TestProgn(t *testing.T) {
	if got := evalOK(t, "(progn 1 2 3)"); got != Num(3) {
		t.Errorf("progn = %v", got)
	}
}

func TestConcat(t *testing.T) {
	if got := evalOK(t, `(concat "a" 1 'b)`); got != Str("a1b") {
		t.Errorf("concat = %v", got)
	}
}

func TestNot(t *testing.T) {
	if !Truthy(evalOK(t, "(not ())")) {
		t.Error("(not ()) should be t")
	}
	if Truthy(evalOK(t, "(not 1)")) {
		t.Error("(not 1) should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "(foo", `"unterminated`, "(quote)"}
	for _, src := range bad {
		env := NewEnv()
		if _, err := EvalString(env, src); err == nil {
			t.Errorf("EvalString(%q) accepted", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"undefined-symbol",
		"(+ 'a 1)",
		"(/ 1 0)",
		"(1 2 3)",
		"((lambda (a) a) 1 2)",
		"(car 5)",
		"(cons 1 2)",
	}
	for _, src := range bad {
		env := NewEnv()
		if _, err := EvalString(env, src); err == nil {
			t.Errorf("EvalString(%q) accepted", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{"(1 2 3)", "(a (b c) 4)", "()"}
	for _, src := range srcs {
		forms, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := Format(forms[0]); got != src {
			t.Errorf("Format = %q, want %q", got, src)
		}
	}
}

// Property: integer arithmetic in WOOL matches Go.
func TestArithmeticProperty(t *testing.T) {
	f := func(a, b int16) bool {
		env := NewEnv()
		src := "(+ " + Format(Num(a)) + " " + Format(Num(b)) + ")"
		v, err := EvalString(env, src)
		return err == nil && v == Num(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parsing a formatted list round-trips.
func TestParseFormatProperty(t *testing.T) {
	f := func(xs []int8) bool {
		if len(xs) > 12 {
			return true
		}
		var l List
		for _, x := range xs {
			l = append(l, Num(x))
		}
		forms, err := Parse(Format(l))
		if err != nil || len(forms) != 1 {
			return false
		}
		return valueEqual(forms[0], l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The default policy program itself evaluates cleanly and yields
// sensible decoration decisions.
func TestDefaultPolicyDescribeWindow(t *testing.T) {
	env := NewEnv()
	if _, err := EvalString(env, DefaultPolicy); err != nil {
		t.Fatal(err)
	}
	fn, ok := env.Get("describe-window")
	if !ok {
		t.Fatal("describe-window undefined")
	}
	v, err := Apply(env, fn, []Value{Str("shell"), Str("XTerm")})
	if err != nil {
		t.Fatal(err)
	}
	l := v.(List)
	if l[0] != Num(18) {
		t.Errorf("xterm title height = %v", l[0])
	}
	v, err = Apply(env, fn, []Value{Str("xclock"), Str("XClock")})
	if err != nil {
		t.Fatal(err)
	}
	l = v.(List)
	if l[0] != Num(0) {
		t.Errorf("xclock title height = %v (policy says clocks get none)", l[0])
	}
}
