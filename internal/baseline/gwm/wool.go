// Package gwm implements a baseline window manager in the style of
// Colas Nahaboo's GWM, the paper's second comparison point: policy-free
// like swm, but it "requires command of the Lisp language to implement
// a particular look-and-feel" (§1). All policy — decoration parameters
// and event behavior — is evaluated by a small WOOL-like Lisp
// interpreter on every decision, which is also what makes it the
// slowest of the three window managers in the evaluation benchmarks.
package gwm

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a WOOL value: Num, Str, Sym, List, Builtin or *Lambda. The
// empty list is false; everything else is true.
type Value interface{}

// Num is an integer.
type Num int64

// Str is a string literal.
type Str string

// Sym is a symbol.
type Sym string

// List is a proper list.
type List []Value

// Builtin is a native function.
type Builtin func(env *Env, args []Value) (Value, error)

// Lambda is a user-defined function with lexical scope.
type Lambda struct {
	Params []Sym
	Body   []Value
	Env    *Env
}

// Nil is the empty list / false.
var Nil = List(nil)

// T is canonical truth.
var T = Sym("t")

// Truthy reports WOOL truth: everything except the empty list is true.
func Truthy(v Value) bool {
	if l, ok := v.(List); ok {
		return len(l) != 0
	}
	return v != nil
}

// Env is a lexical environment.
type Env struct {
	vars   map[Sym]Value
	parent *Env
}

// NewEnv creates a root environment with the standard builtins.
func NewEnv() *Env {
	env := &Env{vars: make(map[Sym]Value)}
	installBuiltins(env)
	return env
}

// Child creates a nested scope.
func (e *Env) Child() *Env {
	return &Env{vars: make(map[Sym]Value), parent: e}
}

// Get resolves a symbol.
func (e *Env) Get(s Sym) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[s]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns in the scope where the symbol is bound, or the current
// scope if unbound (setq semantics).
func (e *Env) Set(s Sym, v Value) {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[s]; ok {
			env.vars[s] = v
			return
		}
	}
	e.vars[s] = v
}

// Define binds in the current scope.
func (e *Env) Define(s Sym, v Value) { e.vars[s] = v }

// --- Reader -------------------------------------------------------------

type reader struct {
	src []rune
	pos int
}

// Parse reads all top-level forms from src.
func Parse(src string) ([]Value, error) {
	r := &reader{src: []rune(src)}
	var forms []Value
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return forms, nil
		}
		f, err := r.readForm()
		if err != nil {
			return nil, err
		}
		forms = append(forms, f)
	}
}

func (r *reader) skipSpace() {
	for r.pos < len(r.src) {
		ch := r.src[r.pos]
		if ch == ';' {
			for r.pos < len(r.src) && r.src[r.pos] != '\n' {
				r.pos++
			}
			continue
		}
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			r.pos++
			continue
		}
		return
	}
}

func (r *reader) readForm() (Value, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, fmt.Errorf("wool: unexpected end of input")
	}
	switch ch := r.src[r.pos]; {
	case ch == '(':
		r.pos++
		var items List
		for {
			r.skipSpace()
			if r.pos >= len(r.src) {
				return nil, fmt.Errorf("wool: unterminated list")
			}
			if r.src[r.pos] == ')' {
				r.pos++
				return items, nil
			}
			item, err := r.readForm()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
		}
	case ch == ')':
		return nil, fmt.Errorf("wool: unexpected ')'")
	case ch == '\'':
		r.pos++
		f, err := r.readForm()
		if err != nil {
			return nil, err
		}
		return List{Sym("quote"), f}, nil
	case ch == '"':
		r.pos++
		var sb strings.Builder
		for r.pos < len(r.src) && r.src[r.pos] != '"' {
			if r.src[r.pos] == '\\' && r.pos+1 < len(r.src) {
				r.pos++
			}
			sb.WriteRune(r.src[r.pos])
			r.pos++
		}
		if r.pos >= len(r.src) {
			return nil, fmt.Errorf("wool: unterminated string")
		}
		r.pos++
		return Str(sb.String()), nil
	default:
		start := r.pos
		for r.pos < len(r.src) && !strings.ContainsRune(" \t\n\r()';\"", r.src[r.pos]) {
			r.pos++
		}
		tok := string(r.src[start:r.pos])
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
			return Num(n), nil
		}
		return Sym(tok), nil
	}
}

// --- Evaluator ----------------------------------------------------------

// Eval evaluates one form.
func Eval(env *Env, form Value) (Value, error) {
	switch v := form.(type) {
	case Num, Str, Builtin, *Lambda:
		return v, nil
	case Sym:
		if val, ok := env.Get(v); ok {
			return val, nil
		}
		return nil, fmt.Errorf("wool: unbound symbol %q", v)
	case List:
		if len(v) == 0 {
			return Nil, nil
		}
		if head, ok := v[0].(Sym); ok {
			switch head {
			case "quote":
				if len(v) != 2 {
					return nil, fmt.Errorf("wool: quote wants 1 argument")
				}
				return v[1], nil
			case "if":
				if len(v) < 3 || len(v) > 4 {
					return nil, fmt.Errorf("wool: if wants 2 or 3 arguments")
				}
				cond, err := Eval(env, v[1])
				if err != nil {
					return nil, err
				}
				if Truthy(cond) {
					return Eval(env, v[2])
				}
				if len(v) == 4 {
					return Eval(env, v[3])
				}
				return Nil, nil
			case "setq", "define":
				if len(v) != 3 {
					return nil, fmt.Errorf("wool: %s wants 2 arguments", head)
				}
				name, ok := v[1].(Sym)
				if !ok {
					return nil, fmt.Errorf("wool: %s: %v is not a symbol", head, v[1])
				}
				val, err := Eval(env, v[2])
				if err != nil {
					return nil, err
				}
				if head == "define" {
					env.Define(name, val)
				} else {
					env.Set(name, val)
				}
				return val, nil
			case "lambda", "defun-anon":
				if len(v) < 3 {
					return nil, fmt.Errorf("wool: lambda wants params and body")
				}
				params, err := paramList(v[1])
				if err != nil {
					return nil, err
				}
				return &Lambda{Params: params, Body: v[2:], Env: env}, nil
			case "defun":
				if len(v) < 4 {
					return nil, fmt.Errorf("wool: defun wants name, params, body")
				}
				name, ok := v[1].(Sym)
				if !ok {
					return nil, fmt.Errorf("wool: defun: bad name %v", v[1])
				}
				params, err := paramList(v[2])
				if err != nil {
					return nil, err
				}
				fn := &Lambda{Params: params, Body: v[3:], Env: env}
				env.Define(name, fn)
				return fn, nil
			case "progn", "begin":
				return evalBody(env, v[1:])
			case "while":
				if len(v) < 2 {
					return nil, fmt.Errorf("wool: while wants a condition")
				}
				var last Value = Nil
				for i := 0; ; i++ {
					if i > 1_000_000 {
						return nil, fmt.Errorf("wool: while exceeded iteration limit")
					}
					cond, err := Eval(env, v[1])
					if err != nil {
						return nil, err
					}
					if !Truthy(cond) {
						return last, nil
					}
					last, err = evalBody(env, v[2:])
					if err != nil {
						return nil, err
					}
				}
			case "let":
				if len(v) < 2 {
					return nil, fmt.Errorf("wool: let wants bindings")
				}
				binds, ok := v[1].(List)
				if !ok {
					return nil, fmt.Errorf("wool: let: bad bindings %v", v[1])
				}
				child := env.Child()
				for _, b := range binds {
					pair, ok := b.(List)
					if !ok || len(pair) != 2 {
						return nil, fmt.Errorf("wool: let: bad binding %v", b)
					}
					name, ok := pair[0].(Sym)
					if !ok {
						return nil, fmt.Errorf("wool: let: bad binding name %v", pair[0])
					}
					val, err := Eval(env, pair[1])
					if err != nil {
						return nil, err
					}
					child.Define(name, val)
				}
				return evalBody(child, v[2:])
			case "and":
				var last Value = T
				for _, f := range v[1:] {
					val, err := Eval(env, f)
					if err != nil {
						return nil, err
					}
					if !Truthy(val) {
						return Nil, nil
					}
					last = val
				}
				return last, nil
			case "or":
				for _, f := range v[1:] {
					val, err := Eval(env, f)
					if err != nil {
						return nil, err
					}
					if Truthy(val) {
						return val, nil
					}
				}
				return Nil, nil
			}
		}
		// Application.
		fn, err := Eval(env, v[0])
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(v)-1)
		for i, a := range v[1:] {
			args[i], err = Eval(env, a)
			if err != nil {
				return nil, err
			}
		}
		return Apply(env, fn, args)
	case nil:
		return Nil, nil
	}
	return nil, fmt.Errorf("wool: cannot evaluate %T", form)
}

// Apply calls a builtin or lambda.
func Apply(env *Env, fn Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case Builtin:
		return f(env, args)
	case *Lambda:
		if len(args) != len(f.Params) {
			return nil, fmt.Errorf("wool: arity mismatch: want %d args, got %d", len(f.Params), len(args))
		}
		child := f.Env.Child()
		for i, p := range f.Params {
			child.Define(p, args[i])
		}
		return evalBody(child, f.Body)
	}
	return nil, fmt.Errorf("wool: %v is not callable", fn)
}

func evalBody(env *Env, body []Value) (Value, error) {
	var last Value = Nil
	for _, f := range body {
		var err error
		last, err = Eval(env, f)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

func paramList(v Value) ([]Sym, error) {
	l, ok := v.(List)
	if !ok {
		return nil, fmt.Errorf("wool: bad parameter list %v", v)
	}
	params := make([]Sym, len(l))
	for i, p := range l {
		s, ok := p.(Sym)
		if !ok {
			return nil, fmt.Errorf("wool: bad parameter %v", p)
		}
		params[i] = s
	}
	return params, nil
}

// EvalString parses and evaluates a program, returning the last value.
func EvalString(env *Env, src string) (Value, error) {
	forms, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return evalBody(env, forms)
}

// --- Builtins -----------------------------------------------------------

func installBuiltins(env *Env) {
	env.Define("t", T)
	env.Define("nil", Nil)
	def := func(name string, fn Builtin) { env.Define(Sym(name), fn) }

	def("+", numFold(func(a, b int64) int64 { return a + b }, 0))
	def("*", numFold(func(a, b int64) int64 { return a * b }, 1))
	def("-", func(_ *Env, args []Value) (Value, error) {
		ns, err := nums(args)
		if err != nil {
			return nil, err
		}
		if len(ns) == 0 {
			return nil, fmt.Errorf("wool: - wants arguments")
		}
		if len(ns) == 1 {
			return Num(-ns[0]), nil
		}
		acc := ns[0]
		for _, n := range ns[1:] {
			acc -= n
		}
		return Num(acc), nil
	})
	def("/", func(_ *Env, args []Value) (Value, error) {
		ns, err := nums(args)
		if err != nil {
			return nil, err
		}
		if len(ns) != 2 {
			return nil, fmt.Errorf("wool: / wants 2 arguments")
		}
		if ns[1] == 0 {
			return nil, fmt.Errorf("wool: division by zero")
		}
		return Num(ns[0] / ns[1]), nil
	})
	def("<", numCmp(func(a, b int64) bool { return a < b }))
	def(">", numCmp(func(a, b int64) bool { return a > b }))
	def("<=", numCmp(func(a, b int64) bool { return a <= b }))
	def(">=", numCmp(func(a, b int64) bool { return a >= b }))
	def("=", func(_ *Env, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("wool: = wants 2 arguments")
		}
		if valueEqual(args[0], args[1]) {
			return T, nil
		}
		return Nil, nil
	})
	def("not", func(_ *Env, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("wool: not wants 1 argument")
		}
		if Truthy(args[0]) {
			return Nil, nil
		}
		return T, nil
	})
	def("car", func(_ *Env, args []Value) (Value, error) {
		l, err := oneList(args, "car")
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return Nil, nil
		}
		return l[0], nil
	})
	def("cdr", func(_ *Env, args []Value) (Value, error) {
		l, err := oneList(args, "cdr")
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return Nil, nil
		}
		return l[1:], nil
	})
	def("cons", func(_ *Env, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("wool: cons wants 2 arguments")
		}
		tail, ok := args[1].(List)
		if !ok {
			return nil, fmt.Errorf("wool: cons onto non-list %v", args[1])
		}
		return append(List{args[0]}, tail...), nil
	})
	def("list", func(_ *Env, args []Value) (Value, error) {
		return List(args), nil
	})
	def("length", func(_ *Env, args []Value) (Value, error) {
		switch v := args[0].(type) {
		case List:
			return Num(len(v)), nil
		case Str:
			return Num(len(v)), nil
		}
		return nil, fmt.Errorf("wool: length of %T", args[0])
	})
	def("concat", func(_ *Env, args []Value) (Value, error) {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(Format(a))
		}
		return Str(sb.String()), nil
	})
}

func nums(args []Value) ([]int64, error) {
	out := make([]int64, len(args))
	for i, a := range args {
		n, ok := a.(Num)
		if !ok {
			return nil, fmt.Errorf("wool: %v is not a number", a)
		}
		out[i] = int64(n)
	}
	return out, nil
}

func numFold(f func(a, b int64) int64, init int64) Builtin {
	return func(_ *Env, args []Value) (Value, error) {
		ns, err := nums(args)
		if err != nil {
			return nil, err
		}
		acc := init
		for _, n := range ns {
			acc = f(acc, n)
		}
		return Num(acc), nil
	}
}

func numCmp(f func(a, b int64) bool) Builtin {
	return func(_ *Env, args []Value) (Value, error) {
		ns, err := nums(args)
		if err != nil {
			return nil, err
		}
		if len(ns) != 2 {
			return nil, fmt.Errorf("wool: comparison wants 2 arguments")
		}
		if f(ns[0], ns[1]) {
			return T, nil
		}
		return Nil, nil
	}
}

func oneList(args []Value, name string) (List, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("wool: %s wants 1 argument", name)
	}
	l, ok := args[0].(List)
	if !ok {
		return nil, fmt.Errorf("wool: %s of non-list %v", name, args[0])
	}
	return l, nil
}

func valueEqual(a, b Value) bool {
	switch av := a.(type) {
	case Num:
		bv, ok := b.(Num)
		return ok && av == bv
	case Str:
		bv, ok := b.(Str)
		return ok && av == bv
	case Sym:
		bv, ok := b.(Sym)
		return ok && av == bv
	case List:
		bv, ok := b.(List)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !valueEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Format renders a value for display.
func Format(v Value) string {
	switch val := v.(type) {
	case Num:
		return strconv.FormatInt(int64(val), 10)
	case Str:
		return string(val)
	case Sym:
		return string(val)
	case List:
		parts := make([]string, len(val))
		for i, item := range val {
			parts[i] = Format(item)
		}
		return "(" + strings.Join(parts, " ") + ")"
	case *Lambda:
		return "#<lambda>"
	case Builtin:
		return "#<builtin>"
	case nil:
		return "()"
	}
	return fmt.Sprintf("%v", v)
}
