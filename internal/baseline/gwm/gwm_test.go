package gwm

import (
	"testing"

	"repro/internal/clients"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func newGwm(t *testing.T, policy string) (*xserver.Server, *WM) {
	t.Helper()
	s := xserver.NewServer()
	wm, err := New(s, policy)
	if err != nil {
		t.Fatal(err)
	}
	return s, wm
}

func launch(t *testing.T, s *xserver.Server, wm *WM, cfg clients.Config) (*clients.App, *Client) {
	t.Helper()
	app, err := clients.Launch(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		t.Fatalf("client %s not managed", cfg.Instance)
	}
	return app, c
}

func TestPolicyDrivenDecoration(t *testing.T) {
	s, wm := newGwm(t, "")
	_, term := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 300, Height: 200})
	_, clock := launch(t, s, wm, clients.Config{Instance: "xclock", Class: "XClock", Width: 120, Height: 120})
	if term.Title == xproto.None {
		t.Error("xterm should be titled per default policy")
	}
	if clock.Title != xproto.None {
		t.Error("xclock should be title-less per default policy")
	}
}

func TestCustomPolicyChangesLookAndFeel(t *testing.T) {
	// Implementing a different look-and-feel = writing Lisp (paper §1).
	policy := `
(defun describe-window (name class) (list 40 5 t))
(defun handle-button (button context) 'none)
`
	s, wm := newGwm(t, policy)
	_, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 100, Height: 100})
	g, _ := wm.conn.GetGeometry(c.Title)
	if g.Rect.Height != 40 {
		t.Errorf("title height = %d, want the policy's 40", g.Rect.Height)
	}
	if c.FrameRect.Width != 100+2*5 {
		t.Errorf("frame width = %d, want policy border 5 applied", c.FrameRect.Width)
	}
}

func TestBadPolicyRejected(t *testing.T) {
	s := xserver.NewServer()
	if _, err := New(s, "(this is not"); err == nil {
		t.Error("unparsable policy accepted")
	}
	if _, err := New(s, "(undefined-fn)"); err == nil {
		t.Error("crashing policy accepted")
	}
}

func TestPolicyMissingDescribeWindow(t *testing.T) {
	s, wm := newGwm(t, "(define unused 1)")
	app, err := clients.Launch(s, clients.Config{Instance: "x", Class: "X", Width: 50, Height: 50})
	if err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	if _, ok := wm.ClientOf(app.Win); ok {
		t.Error("managed despite missing describe-window")
	}
	// The window must still be mapped (fallback).
	attrs, _ := app.Conn.GetWindowAttributes(app.Win)
	if attrs.MapState != xproto.IsViewable {
		t.Error("client locked out by broken policy")
	}
}

func TestButtonDispatchThroughLisp(t *testing.T) {
	s, wm := newGwm(t, "")
	_, c1 := launch(t, s, wm, clients.Config{Instance: "a", Class: "A", Width: 200, Height: 200, X: 100, Y: 100})
	launch(t, s, wm, clients.Config{Instance: "b", Class: "B", Width: 200, Height: 200, X: 150, Y: 150})
	rx, ry, _, _ := wm.conn.TranslateCoordinates(c1.Title, s.Screens()[0].Root, 2, 2)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button1, 0) // policy: title+Btn1 = raise
	s.FakeButtonRelease(xproto.Button1, 0)
	wm.Pump()
	_, _, children, _ := wm.conn.QueryTree(s.Screens()[0].Root)
	var top xproto.XID
	for _, ch := range children {
		if _, ok := wm.byFrame[ch]; ok {
			top = ch
		}
	}
	if top != c1.Frame {
		t.Error("Lisp-dispatched raise failed")
	}
}

func TestIconifyThroughLisp(t *testing.T) {
	s, wm := newGwm(t, "")
	_, c := launch(t, s, wm, clients.Config{Instance: "a", Class: "A", Width: 200, Height: 200, X: 300, Y: 300})
	rx, ry, _, _ := wm.conn.TranslateCoordinates(c.Title, s.Screens()[0].Root, 2, 2)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button3, 0) // policy: title+Btn3 = iconify
	s.FakeButtonRelease(xproto.Button3, 0)
	wm.Pump()
	if !c.Iconified {
		t.Fatal("Btn3 on title did not iconify")
	}
	// Click the icon to deiconify.
	rx, ry, _, _ = wm.conn.TranslateCoordinates(c.IconWin, s.Screens()[0].Root, 2, 2)
	s.FakeMotion(rx, ry)
	s.FakeButtonPress(xproto.Button1, 0)
	s.FakeButtonRelease(xproto.Button1, 0)
	wm.Pump()
	if c.Iconified {
		t.Error("icon click did not deiconify")
	}
}

func TestPrimitivesCallableFromPolicy(t *testing.T) {
	s, wm := newGwm(t, "")
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Name: "shell", Width: 100, Height: 100})
	// Policy code can drive the WM directly.
	winID := Num(int64(app.Win))
	wm.env.Define("w", winID)
	v, err := EvalString(wm.env, "(window-name w)")
	if err != nil {
		t.Fatal(err)
	}
	if v != Str("shell") {
		t.Errorf("window-name = %v", v)
	}
	if _, err := EvalString(wm.env, "(move-window w 500 600)"); err != nil {
		t.Fatal(err)
	}
	if c.FrameRect.X != 500 || c.FrameRect.Y != 600 {
		t.Errorf("frame at (%d,%d)", c.FrameRect.X, c.FrameRect.Y)
	}
	if _, err := EvalString(wm.env, "(raise-window w)"); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRequestHonored(t *testing.T) {
	s, wm := newGwm(t, "")
	app, c := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 300, Height: 200})
	if err := app.Resize(400, 300); err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	g, _ := app.Conn.GetGeometry(app.Win)
	if g.Rect.Width != 400 {
		t.Errorf("client width = %d", g.Rect.Width)
	}
	if c.FrameRect.Width != 400+2*c.frameBorder {
		t.Errorf("frame width = %d", c.FrameRect.Width)
	}
}

func TestShutdownReleasesClients(t *testing.T) {
	s, wm := newGwm(t, "")
	app, _ := launch(t, s, wm, clients.Config{Instance: "xterm", Class: "XTerm", Width: 100, Height: 100})
	wm.Shutdown()
	if _, err := app.Conn.GetWindowAttributes(app.Win); err != nil {
		t.Fatalf("client died with WM: %v", err)
	}
}
