package objects

import (
	"testing"

	"repro/internal/xproto"
	"repro/internal/xrdb"
	"repro/internal/xserver"
)

// The paper's OpenLook+ decoration definition (Figure 1).
const openLookDef = `button pulldown +0+0
button name +C+0
button nail -0+0
panel client +0+1`

func newCtx(t *testing.T, resources string) *Context {
	t.Helper()
	db := xrdb.New()
	if err := db.LoadString(resources); err != nil {
		t.Fatal(err)
	}
	return &Context{DB: db, ScreenNum: 0}
}

func TestParsePanelDefOpenLook(t *testing.T) {
	def, err := ParsePanelDef("openLook", openLookDef)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Items) != 4 {
		t.Fatalf("got %d items, want 4", len(def.Items))
	}
	if def.Items[0].Kind != KindButton || def.Items[0].Name != "pulldown" {
		t.Errorf("item 0: %+v", def.Items[0])
	}
	if !def.Items[1].Pos.ColCentered {
		t.Error("name button should be centered")
	}
	if !def.Items[2].Pos.ColFromRight {
		t.Error("nail button should be right-anchored")
	}
	if def.Items[3].Kind != KindPanel || def.Items[3].Name != "client" || def.Items[3].Pos.Row != 1 {
		t.Errorf("item 3: %+v", def.Items[3])
	}
}

func TestParsePanelDefErrors(t *testing.T) {
	if _, err := ParsePanelDef("x", ""); err == nil {
		t.Error("empty definition accepted")
	}
	if _, err := ParsePanelDef("x", "button foo"); err == nil {
		t.Error("non-triple definition accepted")
	}
	if _, err := ParsePanelDef("x", "gadget foo +0+0"); err == nil {
		t.Error("unknown object type accepted")
	}
	if _, err := ParsePanelDef("x", "button foo nowhere"); err == nil {
		t.Error("bad position accepted")
	}
}

func TestBuildOpenLookTree(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.openLook: \
	button pulldown +0+0 \
	button name +C+0 \
	button nail -0+0 \
	panel client +0+1
`)
	root, err := Build(ctx, "openLook")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 4 {
		t.Fatalf("children = %d, want 4", len(root.Children))
	}
	if root.Find("client") == nil {
		t.Error("client slot missing")
	}
	if root.Find("nail") == nil {
		t.Error("nail button missing")
	}
}

func TestBuildMissingPanel(t *testing.T) {
	ctx := newCtx(t, "")
	if _, err := Build(ctx, "nosuch"); err == nil {
		t.Error("missing panel definition accepted")
	}
}

func TestBuildRecursivePanelRejected(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.loop: panel loop +0+0
`)
	if _, err := Build(ctx, "loop"); err == nil {
		t.Error("recursive panel definition accepted")
	}
}

func TestBuildNestedPanel(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.outer: \
	panel inner +0+0 \
	button b +0+1
Swm*panel.inner: \
	button x +0+0 \
	button y +1+0
`)
	root, err := Build(ctx, "outer")
	if err != nil {
		t.Fatal(err)
	}
	inner := root.Find("inner")
	if inner == nil || len(inner.Children) != 2 {
		t.Fatalf("inner panel not expanded: %+v", inner)
	}
}

func TestAttributesFromResources(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.p: button foo +0+0
swm*button.foo.foreground: white
swm*button.foo.background: steelblue
swm*button.foo.font: fixed
swm*button.foo.label: OK
swm*button.foo.bindings: <Btn1> : f.raise
`)
	root, err := Build(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	foo := root.Find("foo")
	if foo.Attrs.Foreground != "white" || foo.Attrs.Background != "steelblue" || foo.Attrs.Font != "fixed" {
		t.Errorf("attrs = %+v", foo.Attrs)
	}
	if foo.Label() != "OK" {
		t.Errorf("label = %q, want resource override", foo.Label())
	}
	if foo.Bindings == nil {
		t.Fatal("bindings not loaded")
	}
	if got := foo.Bindings.Lookup(xproto.ButtonPress, 1, "", 0); got == nil || got[0].Name != "f.raise" {
		t.Errorf("bindings lookup = %v", got)
	}
}

func TestLabelDefaultsToName(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: button quit +0+0\n")
	root, _ := Build(ctx, "p")
	if root.Find("quit").Label() != "quit" {
		t.Errorf("label = %q", root.Find("quit").Label())
	}
}

func TestPerScreenAttribute(t *testing.T) {
	db := xrdb.New()
	db.MustPut("Swm*panel.p", "button b +0+0")
	db.MustPut("swm*button.b.foreground", "black")
	db.MustPut("swm.monochrome.screen1.button.b.foreground", "white")
	ctx0 := &Context{DB: db, ScreenNum: 0}
	ctx1 := &Context{DB: db, ScreenNum: 1, Monochrome: true}
	r0, err := Build(ctx0, "p")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Build(ctx1, "p")
	if err != nil {
		t.Fatal(err)
	}
	if r0.Find("b").Attrs.Foreground != "black" {
		t.Errorf("screen0 fg = %q", r0.Find("b").Attrs.Foreground)
	}
	if r1.Find("b").Attrs.Foreground != "white" {
		t.Errorf("screen1 fg = %q (per-screen resource ignored)", r1.Find("b").Attrs.Foreground)
	}
}

// --- layout ---

func buildOpenLook(t *testing.T) *Object {
	t.Helper()
	ctx := newCtx(t, `Swm*panel.openLook: \
	button pulldown +0+0 \
	button name +C+0 \
	button nail -0+0 \
	panel client +0+1
`)
	root, err := Build(ctx, "openLook")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLayoutOpenLookDecoration(t *testing.T) {
	root := buildOpenLook(t)
	w, h := Layout(root, 300, 200)
	if w != 300 {
		t.Errorf("panel width = %d, want the client width 300", w)
	}
	client := root.Find("client")
	if client.Rect.Width != 300 || client.Rect.Height != 200 {
		t.Errorf("client rect = %v", client.Rect)
	}
	pulldown := root.Find("pulldown")
	name := root.Find("name")
	nail := root.Find("nail")
	// Row 0: pulldown at left edge.
	if pulldown.Rect.X != 0 {
		t.Errorf("pulldown x = %d, want 0", pulldown.Rect.X)
	}
	// Nail flush against the right edge.
	if nail.Rect.X+nail.Rect.Width != w {
		t.Errorf("nail right edge = %d, want %d", nail.Rect.X+nail.Rect.Width, w)
	}
	// Name centered within the titlebar.
	center := name.Rect.X + name.Rect.Width/2
	if center < w/2-CharWidth || center > w/2+CharWidth {
		t.Errorf("name center = %d, want ~%d", center, w/2)
	}
	// Client row below the titlebar row.
	if client.Rect.Y <= pulldown.Rect.Y {
		t.Error("client row not below titlebar row")
	}
	// Total height covers both rows.
	titleH := pulldown.Rect.Height
	if h < titleH+200 {
		t.Errorf("panel height = %d, want >= %d", h, titleH+200)
	}
}

func TestLayoutRootPanelGrid(t *testing.T) {
	// The paper's RootPanel: 4 columns x 2 rows of buttons (Figure 2).
	ctx := newCtx(t, `Swm*panel.RootPanel: \
	button quit +0+0 \
	button restart +1+0 \
	button iconify +2+0 \
	button deiconify +3+0 \
	button move +0+1 \
	button resize +1+1 \
	button raise +2+1 \
	button lower +3+1
`)
	root, err := Build(ctx, "RootPanel")
	if err != nil {
		t.Fatal(err)
	}
	w, h := Layout(root, 0, 0)
	if w <= 0 || h <= 0 {
		t.Fatalf("degenerate layout %dx%d", w, h)
	}
	quit := root.Find("quit")
	restart := root.Find("restart")
	move := root.Find("move")
	if quit.Rect.Y != move.Rect.Y-quit.Rect.Height-RowGap {
		t.Errorf("rows not stacked: quit.y=%d move.y=%d", quit.Rect.Y, move.Rect.Y)
	}
	if restart.Rect.X != quit.Rect.X+quit.Rect.Width {
		t.Errorf("columns not packed: quit=%v restart=%v", quit.Rect, restart.Rect)
	}
	// Column order follows the column index.
	names := []string{"quit", "restart", "iconify", "deiconify"}
	lastX := -1
	for _, n := range names {
		o := root.Find(n)
		if o.Rect.X <= lastX {
			t.Errorf("column order broken at %s (x=%d after %d)", n, o.Rect.X, lastX)
		}
		lastX = o.Rect.X
	}
}

func TestLayoutButtonNaturalSize(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: button iconify +0+0\n")
	root, _ := Build(ctx, "p")
	Layout(root, 0, 0)
	b := root.Find("iconify")
	wantW := CharWidth*len("iconify") + 2*ObjectPadX
	if b.Rect.Width != wantW {
		t.Errorf("button width = %d, want %d", b.Rect.Width, wantW)
	}
	if b.Rect.Height != CharHeight+2*ObjectPadY {
		t.Errorf("button height = %d", b.Rect.Height)
	}
}

func TestLayoutRelabelChangesSize(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: button st +0+0\n")
	root, _ := Build(ctx, "p")
	Layout(root, 0, 0)
	w1 := root.Find("st").Rect.Width
	root.Find("st").SetLabel("a much longer label")
	Layout(root, 0, 0)
	w2 := root.Find("st").Rect.Width
	if w2 <= w1 {
		t.Errorf("width did not grow after relabel: %d -> %d", w1, w2)
	}
}

func TestLayoutDecorationBelowAndSide(t *testing.T) {
	// "Objects can easily be placed to the sides or below the client
	// window in addition to the more traditional titlebar appearance."
	ctx := newCtx(t, `Swm*panel.sideways: \
	button side +0+0 \
	panel client +1+0 \
	button below +C+1
`)
	root, err := Build(ctx, "sideways")
	if err != nil {
		t.Fatal(err)
	}
	Layout(root, 120, 80)
	side := root.Find("side")
	client := root.Find("client")
	below := root.Find("below")
	if side.Rect.X+side.Rect.Width != client.Rect.X {
		t.Errorf("side button not left of client: side=%v client=%v", side.Rect, client.Rect)
	}
	if below.Rect.Y < client.Rect.Y+client.Rect.Height {
		t.Errorf("below button not below client: below=%v client=%v", below.Rect, client.Rect)
	}
}

func TestShapeRectsUnionOfChildren(t *testing.T) {
	root := buildOpenLook(t)
	Layout(root, 100, 60)
	rects := ShapeRects(root)
	if len(rects) != 4 {
		t.Fatalf("got %d shape rects, want 4", len(rects))
	}
	// Every child rect must appear.
	for _, c := range root.Children {
		found := false
		for _, r := range rects {
			if r == c.Rect {
				found = true
			}
		}
		if !found {
			t.Errorf("child %q rect %v missing from shape", c.Name, c.Rect)
		}
	}
}

// --- realization ---

func TestRealizeCreatesWindows(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	root := buildOpenLook(t)
	Layout(root, 300, 200)
	if err := Realize(conn, root, s.Screens()[0].Root, 50, 60); err != nil {
		t.Fatal(err)
	}
	if root.Window == xproto.None {
		t.Fatal("root not realized")
	}
	g, err := conn.GetGeometry(root.Window)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rect.X != 50 || g.Rect.Y != 60 {
		t.Errorf("frame at (%d,%d), want (50,60)", g.Rect.X, g.Rect.Y)
	}
	// All four children realized beneath the frame.
	_, _, children, _ := conn.QueryTree(root.Window)
	if len(children) != 4 {
		t.Errorf("frame has %d children, want 4", len(children))
	}
	// Buttons are mapped, the client slot is not (the WM reparents the
	// client window into it and maps then).
	attrs, _ := conn.GetWindowAttributes(root.Find("nail").Window)
	if attrs.MapState == xproto.IsUnmapped {
		t.Error("nail button unmapped")
	}
	attrs, _ = conn.GetWindowAttributes(root.Find("client").Window)
	if attrs.MapState != xproto.IsUnmapped {
		t.Error("client slot should stay unmapped")
	}
}

func TestRealizeSelectsInputForBoundObjects(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	ctx := newCtx(t, `Swm*panel.p: button b +0+0
swm*button.b.bindings: <Btn1> : f.raise
`)
	root, _ := Build(ctx, "p")
	Layout(root, 0, 0)
	if err := Realize(conn, root, s.Screens()[0].Root, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := conn.MapWindow(root.Window); err != nil {
		t.Fatal(err)
	}
	b := root.Find("b")
	s.FakeMotion(b.Rect.X+2, b.Rect.Y+2)
	for {
		if _, ok := conn.PollEvent(); !ok {
			break
		}
	}
	s.FakeButtonPress(xproto.Button1, 0)
	var press bool
	for {
		ev, ok := conn.PollEvent()
		if !ok {
			break
		}
		if ev.Type == xproto.ButtonPress && ev.Window == b.Window {
			press = true
		}
	}
	if !press {
		t.Error("bound button did not receive ButtonPress")
	}
	s.FakeButtonRelease(xproto.Button1, 0)
}

func TestRealizeShapedPanel(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	ctx := newCtx(t, `Swm*panel.shapeit: panel client +0+0
swm*panel.shapeit.shape: True
`)
	root, err := Build(ctx, "shapeit")
	if err != nil {
		t.Fatal(err)
	}
	Layout(root, 100, 100)
	if err := Realize(conn, root, s.Screens()[0].Root, 0, 0); err != nil {
		t.Fatal(err)
	}
	shaped, rects, err := conn.ShapeQuery(root.Window)
	if err != nil {
		t.Fatal(err)
	}
	if !shaped {
		t.Fatal("shapeit panel not shaped")
	}
	if len(rects) != 1 || rects[0].Width != 100 || rects[0].Height != 100 {
		t.Errorf("shape rects = %v", rects)
	}
}

func TestSyncGeometryAfterRelabel(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	ctx := newCtx(t, "Swm*panel.p: button name +C+0\n")
	root, _ := Build(ctx, "p")
	Layout(root, 0, 0)
	if err := Realize(conn, root, s.Screens()[0].Root, 0, 0); err != nil {
		t.Fatal(err)
	}
	name := root.Find("name")
	name.SetLabel("xterm — /home/toml")
	Layout(root, 0, 0)
	if err := SyncGeometry(conn, root); err != nil {
		t.Fatal(err)
	}
	g, _ := conn.GetGeometry(name.Window)
	if g.Rect.Width != name.Rect.Width {
		t.Errorf("server width %d != layout width %d", g.Rect.Width, name.Rect.Width)
	}
}

func TestDestroyTearsDownTree(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	root := buildOpenLook(t)
	Layout(root, 100, 100)
	if err := Realize(conn, root, s.Screens()[0].Root, 0, 0); err != nil {
		t.Fatal(err)
	}
	frameWin := root.Window
	if err := Destroy(conn, root); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.GetGeometry(frameWin); err == nil {
		t.Error("frame window survived Destroy")
	}
	if root.Window != xproto.None {
		t.Error("root.Window not cleared")
	}
}

func TestFindByWindow(t *testing.T) {
	s := xserver.NewServer()
	conn := s.Connect("wm")
	root := buildOpenLook(t)
	Layout(root, 100, 100)
	if err := Realize(conn, root, s.Screens()[0].Root, 0, 0); err != nil {
		t.Fatal(err)
	}
	nail := root.Find("nail")
	if got := FindByWindow(root, nail.Window); got != nail {
		t.Errorf("FindByWindow = %v", got)
	}
	if got := FindByWindow(root, 0xdeadbeef); got != nil {
		t.Errorf("phantom window found: %v", got)
	}
}

func TestContextPrefixes(t *testing.T) {
	// §5.1: shaped clients get "shaped" added to resource strings.
	db := xrdb.New()
	db.MustPut("swm*decoration", "openLook")
	db.MustPut("swm*shaped*decoration", "shapeit")
	plain := &Context{DB: db}
	shaped := &Context{DB: db, Prefixes: []string{"shaped"}}
	if v, _ := plain.LookupClient("OClock", "oclock", "decoration"); v != "openLook" {
		t.Errorf("plain decoration = %q", v)
	}
	if v, _ := shaped.LookupClient("OClock", "oclock", "decoration"); v != "shapeit" {
		t.Errorf("shaped decoration = %q", v)
	}
}

func TestLookupClientSpecificResource(t *testing.T) {
	// Full specific resource from the paper:
	// swm.monochrome.screen0.xclock.xclock.decoration: notitlepanel
	db := xrdb.New()
	db.MustPut("swm.monochrome.screen0.xclock.xclock.decoration", "notitlepanel")
	ctx := &Context{DB: db, ScreenNum: 0, Monochrome: true}
	v, ok := ctx.LookupClient("xclock", "xclock", "decoration")
	if !ok || v != "notitlepanel" {
		t.Errorf("got %q ok=%v", v, ok)
	}
	// A color screen must not match the monochrome resource.
	ctxColor := &Context{DB: db, ScreenNum: 0}
	if _, ok := ctxColor.LookupClient("xclock", "xclock", "decoration"); ok {
		t.Error("monochrome resource matched on color screen")
	}
}
