package objects

import (
	"testing"

	"repro/internal/xrdb"
)

func TestLayoutMenuObjectsAreColumn(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.m: \
	button one +0+0 \
	button two +0+1 \
	button three +0+2
`)
	root, err := Build(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	Layout(root, 0, 0)
	var lastY int = -1
	for _, name := range []string{"one", "two", "three"} {
		o := root.Find(name)
		if o.Rect.Y <= lastY {
			t.Errorf("%s not below previous item (y=%d after %d)", name, o.Rect.Y, lastY)
		}
		if o.Rect.X != 0 {
			t.Errorf("%s not left-aligned (x=%d)", name, o.Rect.X)
		}
		lastY = o.Rect.Y
	}
	// The panel is as wide as the widest item.
	if root.Rect.Width != root.Find("three").Rect.Width {
		t.Errorf("panel width %d != widest item %d", root.Rect.Width, root.Find("three").Rect.Width)
	}
}

func TestLayoutOnlyRightAnchored(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: button a -0+0\nSwm*panel.p.unused: x\n")
	root, err := Build(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Layout(root, 0, 0)
	a := root.Find("a")
	if a.Rect.X+a.Rect.Width != w {
		t.Errorf("right-anchored item not at right edge: %v in width %d", a.Rect, w)
	}
}

func TestLayoutMultipleCentered(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.p: \
	button aa +C+0 \
	button bb +C+0 \
	panel client +0+1
`)
	root, err := Build(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Layout(root, 400, 100)
	aa, bb := root.Find("aa"), root.Find("bb")
	// The centered group is contiguous...
	if bb.Rect.X != aa.Rect.X+aa.Rect.Width {
		t.Errorf("centered group not contiguous: %v %v", aa.Rect, bb.Rect)
	}
	// ...and roughly centered in the panel.
	groupCenter := aa.Rect.X + (aa.Rect.Width+bb.Rect.Width)/2
	if groupCenter < w/2-CharWidth*2 || groupCenter > w/2+CharWidth*2 {
		t.Errorf("group center %d, want ~%d", groupCenter, w/2)
	}
}

func TestLayoutMixedRowAnchors(t *testing.T) {
	ctx := newCtx(t, `Swm*panel.p: \
	button l0 +0+0 \
	button l1 +1+0 \
	button c +C+0 \
	button r1 -1+0 \
	button r0 -0+0 \
	panel client +0+1
`)
	root, err := Build(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Layout(root, 500, 100)
	l0, l1 := root.Find("l0"), root.Find("l1")
	r0, r1 := root.Find("r0"), root.Find("r1")
	c := root.Find("c")
	if l0.Rect.X != 0 || l1.Rect.X != l0.Rect.Width {
		t.Errorf("left pack wrong: %v %v", l0.Rect, l1.Rect)
	}
	if r0.Rect.X+r0.Rect.Width != w {
		t.Errorf("r0 not flush right: %v (w=%d)", r0.Rect, w)
	}
	if r1.Rect.X+r1.Rect.Width != r0.Rect.X {
		t.Errorf("r1 not left of r0: %v %v", r1.Rect, r0.Rect)
	}
	if c.Rect.X <= l1.Rect.X || c.Rect.X+c.Rect.Width >= r1.Rect.X+r1.Rect.Width {
		t.Errorf("centered item not between packs: %v", c.Rect)
	}
}

func TestEmptyPanelGetsPlaceholderSize(t *testing.T) {
	o := &Object{Kind: KindPanel, Name: "empty"}
	w, h := Layout(o, 0, 0)
	if w <= 0 || h <= 0 {
		t.Errorf("empty panel %dx%d", w, h)
	}
}

func TestClientSlotWithZeroSize(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: panel client +0+0\n")
	root, _ := Build(ctx, "p")
	w, h := Layout(root, 0, 0)
	// Degenerate but non-crashing; realize pads to 1x1.
	if w < 0 || h < 0 {
		t.Errorf("negative layout %dx%d", w, h)
	}
}

func TestDestroyUnrealizedTree(t *testing.T) {
	o := &Object{Kind: KindPanel, Name: "never"}
	if err := Destroy(nil, o); err != nil {
		t.Errorf("Destroy of unrealized tree errored: %v", err)
	}
}

func TestMenuKindParsesAndSizes(t *testing.T) {
	ctx := newCtx(t, "Swm*panel.p: menu chooser +0+0\n")
	root, err := Build(ctx, "p")
	if err != nil {
		t.Fatal(err)
	}
	m := root.Find("chooser")
	if m.Kind != KindMenu {
		t.Fatalf("kind = %v", m.Kind)
	}
	Layout(root, 0, 0)
	if m.Rect.Width <= 0 {
		t.Error("menu object has no size")
	}
}

func BenchmarkBuildOpenLook(b *testing.B) {
	db := xrdb.New()
	db.MustPut("Swm*panel.openLook",
		"button pulldown +0+0\nbutton name +C+0\nbutton nail -0+0\npanel client +0+1")
	db.MustPut("swm*button.name.bindings", "<Btn1> : f.raise\n<Btn2> : f.move")
	ctx := &Context{DB: db}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ctx, "openLook"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayoutOpenLook(b *testing.B) {
	db := xrdb.New()
	db.MustPut("Swm*panel.openLook",
		"button pulldown +0+0\nbutton name +C+0\nbutton nail -0+0\npanel client +0+1")
	ctx := &Context{DB: db}
	root, err := Build(ctx, "openLook")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Layout(root, 300+i%10, 200)
	}
}
