// Package objects implements swm's object system: the four basic
// objects — panel, button, text and menu — from which "an infinite
// number of window management policies can be implemented" (paper §4).
//
// Objects are arranged in hierarchies (panels contain rows of objects,
// including other panels), have attributes (color, font, cursor,
// bindings, shape mask) resolved through the X resource database, and
// are realized as windows on the simulated X server. Buttons can change
// appearance and bindings dynamically, which is how swm decorations
// reflect client state.
package objects

import (
	"fmt"
	"strings"

	"repro/internal/bindings"
	"repro/internal/geom"
	"repro/internal/xproto"
	"repro/internal/xrdb"
)

// Kind discriminates object types.
type Kind int

const (
	KindPanel Kind = iota
	KindButton
	KindText
	KindMenu
)

var kindNames = map[Kind]string{
	KindPanel:  "panel",
	KindButton: "button",
	KindText:   "text",
	KindMenu:   "menu",
}

func (k Kind) String() string { return kindNames[k] }

// ParseKind converts an object-type token from a panel definition.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "panel":
		return KindPanel, nil
	case "button":
		return KindButton, nil
	case "text":
		return KindText, nil
	case "menu":
		return KindMenu, nil
	}
	return 0, fmt.Errorf("objects: unknown object type %q", s)
}

// Text metrics for the deterministic layout model. A real toolkit
// queries font extents; we fix a monospace cell so layouts (and the
// reproduced figures) are stable.
const (
	CharWidth    = 8
	CharHeight   = 14
	ObjectPadX   = 6
	ObjectPadY   = 3
	RowGap       = 1
	PanelBorder  = 1
	MinButtonWpx = 16
)

// Attributes are the per-object settings queried from the resource
// database when the object is created (paper §4.6).
type Attributes struct {
	Foreground string
	Background string
	Font       string
	Cursor     string
	// ShapeMask names a bitmap used as the object's shape; Shape=true on
	// a panel with no mask shapes it to contain its children (§5.1).
	ShapeMask string
	Shape     bool
	// Label overrides the displayed text (defaults to the object name).
	Label string
	// Image names a bitmap displayed in a button.
	Image string
}

// Object is one node of an object tree.
type Object struct {
	Kind     Kind
	Name     string
	Pos      geom.PanelPos
	Parent   *Object
	Children []*Object

	Attrs    Attributes
	Bindings *bindings.Table

	// Rect is the layout result, relative to the parent object.
	Rect xproto.Rect

	// Window is the realized server window (set by Realize).
	Window xproto.XID

	// label is the current display text; dynamic for buttons.
	label string
}

// Label returns the object's current display text.
func (o *Object) Label() string { return o.label }

// SetLabel changes the display text (dynamic button appearance, §4.5).
// The caller re-runs layout/realization to reflect size changes.
func (o *Object) SetLabel(s string) { o.label = s }

// SetBindings swaps the object's action bindings at runtime (§4.5:
// "buttons can not only dynamically change appearance, but they can
// also change functionality").
func (o *Object) SetBindings(t *bindings.Table) { o.Bindings = t }

// Clone returns a deep copy of the object tree rooted at o: fresh
// Object nodes with Parent links rewired into the copy and Window
// cleared (a clone is unrealized until Realize runs on it). The
// Bindings tables are shared — a parsed bindings.Table is read-only;
// runtime rebinding swaps the pointer via SetBindings, which affects
// only the one clone. This is what makes the decoration prototype
// cache sound: Build resolves a tree once per resource context and
// every managed client decorates from a Clone of it.
func (o *Object) Clone() *Object {
	return o.cloneInto(nil)
}

func (o *Object) cloneInto(parent *Object) *Object {
	c := &Object{
		Kind:     o.Kind,
		Name:     o.Name,
		Pos:      o.Pos,
		Parent:   parent,
		Attrs:    o.Attrs,
		Bindings: o.Bindings,
		Rect:     o.Rect,
		label:    o.label,
	}
	if len(o.Children) > 0 {
		c.Children = make([]*Object, 0, len(o.Children))
		for _, ch := range o.Children {
			c.Children = append(c.Children, ch.cloneInto(c))
		}
	}
	return c
}

// Find returns the descendant (or o itself) with the given name, or nil.
func (o *Object) Find(name string) *Object {
	if o.Name == name {
		return o
	}
	for _, c := range o.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Walk visits o and all descendants depth-first.
func (o *Object) Walk(fn func(*Object)) {
	fn(o)
	for _, c := range o.Children {
		c.Walk(fn)
	}
}

// naturalSize returns the object's preferred size before row layout.
func (o *Object) naturalSize() (w, h int) {
	switch o.Kind {
	case KindButton, KindText, KindMenu:
		text := o.label
		w = CharWidth*len(text) + 2*ObjectPadX
		if w < MinButtonWpx {
			w = MinButtonWpx
		}
		h = CharHeight + 2*ObjectPadY
		return w, h
	case KindPanel:
		// Panels size from their laid-out children; Layout fills Rect.
		return o.Rect.Width, o.Rect.Height
	}
	return 0, 0
}

// --- Panel definitions -----------------------------------------------------

// ItemDef is one entry of a panel definition: object-type object-name
// position.
type ItemDef struct {
	Kind Kind
	Name string
	Pos  geom.PanelPos
}

// PanelDef is a parsed panel definition resource value.
type PanelDef struct {
	Name  string
	Items []ItemDef
}

// ParsePanelDef parses a panel definition value such as the paper's
//
//	button pulldown +0+0 \
//	button name +C+0 \
//	button nail -0+0 \
//	panel client +0+1
//
// (continuations arrive as newlines; tokens are whitespace-separated
// triples).
func ParsePanelDef(name, value string) (PanelDef, error) {
	def := PanelDef{Name: name}
	fields := strings.Fields(value)
	if len(fields) == 0 {
		return def, fmt.Errorf("objects: empty panel definition %q", name)
	}
	if len(fields)%3 != 0 {
		return def, fmt.Errorf("objects: panel %q: definition is not a list of (type name position) triples: %q", name, value)
	}
	for i := 0; i < len(fields); i += 3 {
		kind, err := ParseKind(fields[i])
		if err != nil {
			return def, fmt.Errorf("objects: panel %q: %w", name, err)
		}
		pos, err := geom.ParsePanelPos(fields[i+2])
		if err != nil {
			return def, fmt.Errorf("objects: panel %q item %q: %w", name, fields[i+1], err)
		}
		def.Items = append(def.Items, ItemDef{Kind: kind, Name: fields[i+1], Pos: pos})
	}
	return def, nil
}

// --- Resource context --------------------------------------------------------

// Context resolves object attributes against the resource database for
// one screen. Prefixes carry the dynamic resource-string insertions the
// paper describes: "shaped" for shaped clients (§5.1) and "sticky" for
// sticky windows (§6.2).
type Context struct {
	DB         *xrdb.DB
	ScreenNum  int
	Monochrome bool
	Prefixes   []string
}

// titleCased memoizes the class form of every resource component the
// manage fast path uses, so titleCase is allocation-free for them (map
// reads never allocate). Unknown components still get the generic
// concatenation.
var titleCased = map[string]string{
	"background":        "Background",
	"bindings":          "Bindings",
	"button":            "Button",
	"cursor":            "Cursor",
	"decoration":        "Decoration",
	"focusFollowsMouse": "FocusFollowsMouse",
	"font":              "Font",
	"foreground":        "Foreground",
	"iconHolders":       "IconHolders",
	"iconPanel":         "IconPanel",
	"image":             "Image",
	"label":             "Label",
	"menu":              "Menu",
	"panel":             "Panel",
	"remoteStart":       "RemoteStart",
	"rootIcons":         "RootIcons",
	"rootPanels":        "RootPanels",
	"shape":             "Shape",
	"shapeMask":         "ShapeMask",
	"shaped":            "Shaped",
	"sticky":            "Sticky",
	"text":              "Text",
	"transient":         "Transient",
}

// titleCase upper-cases the first letter, forming the class name of a
// resource component ("decoration" -> "Decoration").
func titleCase(s string) string {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return s
	}
	if t, ok := titleCased[s]; ok {
		return t
	}
	return string(s[0]-'a'+'A') + s[1:]
}

func (ctx *Context) colorComponent() (name, class string) {
	if ctx.Monochrome {
		return "monochrome", "Monochrome"
	}
	return "color", "Color"
}

// screenComponents precomputes the per-screen resource component for
// the screen counts that occur in practice; higher numbers fall back
// to formatting.
var screenComponents = [8][2]string{
	{"screen0", "Screen0"}, {"screen1", "Screen1"},
	{"screen2", "Screen2"}, {"screen3", "Screen3"},
	{"screen4", "Screen4"}, {"screen5", "Screen5"},
	{"screen6", "Screen6"}, {"screen7", "Screen7"},
}

func screenComponent(n int) (name, class string) {
	if n >= 0 && n < len(screenComponents) {
		return screenComponents[n][0], screenComponents[n][1]
	}
	return fmt.Sprintf("screen%d", n), fmt.Sprintf("Screen%d", n)
}

// maxQueryDepth bounds a resource query's component count: swm, color,
// screen, up to three prefixes (shaped, sticky, transient) and three
// trailing components. Lookups build their component lists in
// stack-backed arrays of this size, so a query in the manage fast path
// does not allocate (the xrdb trie walk on the other side is
// allocation-free too).
const maxQueryDepth = 9

// appendBase appends the leading name/class components:
// swm.<color>.<screenN>[.<prefixes>...].
func (ctx *Context) appendBase(names, classes []string) ([]string, []string) {
	cn, cc := ctx.colorComponent()
	sn, sc := screenComponent(ctx.ScreenNum)
	names = append(names, "swm", cn, sn)
	classes = append(classes, "Swm", cc, sc)
	for _, p := range ctx.Prefixes {
		names = append(names, p)
		classes = append(classes, titleCase(p))
	}
	return names, classes
}

// Lookup queries a non-specific object resource:
// swm.<color>.<screenN>.<type>.<objName>.<attr>.
func (ctx *Context) Lookup(kind Kind, objName, attr string) (string, bool) {
	var nbuf, cbuf [maxQueryDepth]string
	names, classes := ctx.appendBase(nbuf[:0], cbuf[:0])
	names = append(names, kind.String(), objName, attr)
	classes = append(classes, titleCase(kind.String()), objName, titleCase(attr))
	return ctx.DB.Query(names, classes)
}

// LookupClient queries a specific resource for a client window. The
// paper (§3): "both components of the WM_CLASS property of the client
// are included in the resource string", giving the form
// swm.<color>.<screenN>.<class>.<instance>.<attr>.
func (ctx *Context) LookupClient(class, instance, attr string) (string, bool) {
	var nbuf, cbuf [maxQueryDepth]string
	names, classes := ctx.appendBase(nbuf[:0], cbuf[:0])
	names = append(names, class, instance, attr)
	classes = append(classes, class, class, titleCase(attr))
	return ctx.DB.Query(names, classes)
}

// LookupGlobal queries a non-specific operational resource:
// swm.<color>.<screenN>.<attr>.
func (ctx *Context) LookupGlobal(attr string) (string, bool) {
	var nbuf, cbuf [maxQueryDepth]string
	names, classes := ctx.appendBase(nbuf[:0], cbuf[:0])
	names = append(names, attr)
	classes = append(classes, titleCase(attr))
	return ctx.DB.Query(names, classes)
}

// PanelDefFor fetches and parses the panel definition resource
// swm*panel.<name> (no trailing attribute component).
func (ctx *Context) PanelDefFor(name string) (PanelDef, error) {
	var nbuf, cbuf [maxQueryDepth]string
	names, classes := ctx.appendBase(nbuf[:0], cbuf[:0])
	names = append(names, "panel", name)
	classes = append(classes, "Panel", name)
	v, found := ctx.DB.Query(names, classes)
	if !found {
		return PanelDef{}, fmt.Errorf("objects: no panel definition for %q", name)
	}
	return ParsePanelDef(name, v)
}

// loadAttributes populates an object's attributes and bindings from the
// database.
func (ctx *Context) loadAttributes(o *Object) error {
	if v, ok := ctx.Lookup(o.Kind, o.Name, "foreground"); ok {
		o.Attrs.Foreground = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "background"); ok {
		o.Attrs.Background = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "font"); ok {
		o.Attrs.Font = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "cursor"); ok {
		o.Attrs.Cursor = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "label"); ok {
		o.Attrs.Label = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "image"); ok {
		o.Attrs.Image = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "shapeMask"); ok {
		o.Attrs.ShapeMask = v
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "shape"); ok {
		o.Attrs.Shape = strings.EqualFold(v, "true")
	}
	o.label = o.Name
	if o.Attrs.Label != "" {
		o.label = o.Attrs.Label
	}
	if v, ok := ctx.Lookup(o.Kind, o.Name, "bindings"); ok {
		t, err := bindings.Parse(v)
		if err != nil {
			return fmt.Errorf("objects: %s %q: %w", o.Kind, o.Name, err)
		}
		o.Bindings = t
	}
	return nil
}

// Build constructs the object tree for a named panel, resolving nested
// panel definitions recursively. The special child panel "client" (the
// slot where the client window goes, §4.1.1) is created empty even
// without its own definition.
func Build(ctx *Context, panelName string) (*Object, error) {
	return buildPanel(ctx, panelName, make(map[string]bool))
}

func buildPanel(ctx *Context, panelName string, inProgress map[string]bool) (*Object, error) {
	if inProgress[panelName] {
		return nil, fmt.Errorf("objects: panel %q is defined recursively", panelName)
	}
	inProgress[panelName] = true
	defer delete(inProgress, panelName)

	def, err := ctx.PanelDefFor(panelName)
	if err != nil {
		return nil, err
	}
	root := &Object{Kind: KindPanel, Name: panelName}
	if err := ctx.loadAttributes(root); err != nil {
		return nil, err
	}
	for _, item := range def.Items {
		var child *Object
		if item.Kind == KindPanel {
			// Nested panels may have their own definitions; the client
			// slot and other leaf panels may not.
			if _, derr := ctx.PanelDefFor(item.Name); derr == nil && item.Name != "client" {
				child, err = buildPanel(ctx, item.Name, inProgress)
				if err != nil {
					return nil, err
				}
			} else {
				child = &Object{Kind: KindPanel, Name: item.Name}
				if err := ctx.loadAttributes(child); err != nil {
					return nil, err
				}
			}
		} else {
			child = &Object{Kind: item.Kind, Name: item.Name}
			if err := ctx.loadAttributes(child); err != nil {
				return nil, err
			}
		}
		child.Pos = item.Pos
		child.Parent = root
		root.Children = append(root.Children, child)
	}
	return root, nil
}
