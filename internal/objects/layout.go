package objects

import (
	"fmt"

	"repro/internal/xproto"
	"repro/internal/xserver"
)

// Layout computes geometry for a panel's object tree. Objects within a
// panel are organized into rows (the Y component of each object's
// position selects the row); within a row, left-anchored objects pack
// from the left in column order, right-anchored ("-N") objects pack
// from the right, and centered ("+C") objects split the remaining space
// (paper §4.1).
//
// clientW/clientH give the size of the special "client" panel, if the
// tree contains one (zero for panels without a client slot). Layout
// returns the panel's total size.
func Layout(root *Object, clientW, clientH int) (w, h int) {
	layoutPanel(root, clientW, clientH)
	return root.Rect.Width, root.Rect.Height
}

// layoutPanel computes sizes and positions without allocating: panels
// are laid out on every relabel in the manage fast path, so rows and
// anchor groups are found by ordered scans over the (small) child list
// instead of building maps and sorted slices. The scans are O(rows ×
// children) and O(cols × children) — decorations have a handful of
// each, and the constant factor beats a map-and-sort for every tree
// the templates produce.
func layoutPanel(p *Object, clientW, clientH int) {
	if p.Kind != KindPanel {
		w, h := p.naturalSize()
		p.Rect.Width, p.Rect.Height = w, h
		return
	}
	if p.Name == "client" && len(p.Children) == 0 {
		p.Rect.Width, p.Rect.Height = clientW, clientH
		return
	}
	if len(p.Children) == 0 {
		// An empty non-client panel keeps any size it was given, or a
		// minimal placeholder.
		if p.Rect.Width == 0 {
			p.Rect.Width = MinButtonWpx
		}
		if p.Rect.Height == 0 {
			p.Rect.Height = CharHeight + 2*ObjectPadY
		}
		return
	}

	// Size children first (nested panels recurse).
	for _, c := range p.Children {
		layoutPanel(c, clientW, clientH)
	}

	// Panel content width is the widest row.
	width := 0
	forEachRow(p.Children, func(row int) {
		w := 0
		for _, c := range p.Children {
			if c.Pos.Row == row {
				w += c.Rect.Width
			}
		}
		if w > width {
			width = w
		}
	})

	// Place rows top to bottom, items within each row by anchor class.
	y := 0
	forEachRow(p.Children, func(row int) {
		rowH := 0
		for _, c := range p.Children {
			if c.Pos.Row == row && c.Rect.Height > rowH {
				rowH = c.Rect.Height
			}
		}
		placeRow(p.Children, row, rowH, width, y)
		y += rowH + RowGap
	})
	height := y - RowGap

	p.Rect.Width = width
	p.Rect.Height = height
}

// forEachRow calls f once per distinct Pos.Row value among children, in
// increasing row order.
func forEachRow(children []*Object, f func(row int)) {
	const intMin, intMax = -1 << 63, 1<<63 - 1
	prev := intMin
	for {
		row := intMax
		found := false
		for _, c := range children {
			if c.Pos.Row > prev && (!found || c.Pos.Row < row) {
				row, found = c.Pos.Row, true
			}
		}
		if !found {
			return
		}
		f(row)
		prev = row
	}
}

// rowAnchor classifies one child for placeRow's per-anchor passes.
type rowAnchor uint8

const (
	anchorLeft rowAnchor = iota
	anchorRight
	anchorCenter
)

func anchorOf(c *Object) rowAnchor {
	switch {
	case c.Pos.ColCentered:
		return anchorCenter
	case c.Pos.ColFromRight:
		return anchorRight
	}
	return anchorLeft
}

// forEachInRow calls f for every child in the given row with the given
// anchor, in increasing column order; children sharing a column keep
// their list order (the stable-sort behavior bindings and templates
// rely on).
func forEachInRow(children []*Object, row int, a rowAnchor, f func(c *Object)) {
	const intMin, intMax = -1 << 63, 1<<63 - 1
	prev := intMin
	for {
		col := intMax
		found := false
		for _, c := range children {
			if c.Pos.Row == row && anchorOf(c) == a && c.Pos.Col > prev && (!found || c.Pos.Col < col) {
				col, found = c.Pos.Col, true
			}
		}
		if !found {
			return
		}
		for _, c := range children {
			if c.Pos.Row == row && anchorOf(c) == a && c.Pos.Col == col {
				f(c)
			}
		}
		prev = col
	}
}

// placeRow assigns x positions within one row: left-anchored objects
// pack from the left in column order, right-anchored ("-N") objects
// pack from the right (column 0 flush against the right edge, column 1
// next to it, etc.), and centered objects split the remaining space.
func placeRow(children []*Object, row, rowH, panelWidth, y int) {
	x := 0
	forEachInRow(children, row, anchorLeft, func(c *Object) {
		c.Rect.X = x
		c.Rect.Y = y + (rowH-c.Rect.Height)/2
		x += c.Rect.Width
	})
	leftEnd := x

	rx := panelWidth
	forEachInRow(children, row, anchorRight, func(c *Object) {
		rx -= c.Rect.Width
		c.Rect.X = rx
		c.Rect.Y = y + (rowH-c.Rect.Height)/2
	})
	rightStart := rx

	// Centered objects share the hole between left and right packs,
	// centered as a group within the full panel width (matching how the
	// OpenLook name button sits centered in the titlebar).
	total := 0
	count := 0
	forEachInRow(children, row, anchorCenter, func(c *Object) {
		total += c.Rect.Width
		count++
	})
	if count > 0 {
		start := (panelWidth - total) / 2
		if start < leftEnd {
			start = leftEnd
		}
		if start+total > rightStart {
			start = rightStart - total
		}
		forEachInRow(children, row, anchorCenter, func(c *Object) {
			c.Rect.X = start
			c.Rect.Y = y + (rowH-c.Rect.Height)/2
			start += c.Rect.Width
		})
	}
}

// ShapeRects computes the union-of-children shape for a panel whose
// Shape attribute is set without an explicit mask: "if a panel object is
// to be shaped and no shape mask is specified, it is shaped to contain
// its children" (§5.1). Rectangles are relative to the panel.
func ShapeRects(p *Object) []xproto.Rect {
	var rects []xproto.Rect
	for _, c := range p.Children {
		rects = append(rects, c.Rect)
	}
	if len(rects) == 0 {
		rects = append(rects, xproto.Rect{Width: p.Rect.Width, Height: p.Rect.Height})
	}
	return rects
}

// Realize creates server windows for the object tree: the root panel
// becomes a child of parent at (x, y), children nest inside it. Buttons
// and text objects select button/key/crossing events so bindings can
// fire. Realize maps every interior window except the "client" slot
// (the client window itself is reparented into that slot by the window
// manager); the tree root stays unmapped until the caller maps it.
func Realize(conn *xserver.Conn, root *Object, parent xproto.XID, x, y int) error {
	root.Rect.X, root.Rect.Y = x, y
	return realize(conn, root, parent, true)
}

func realize(conn *xserver.Conn, o *Object, parent xproto.XID, isRoot bool) error {
	if o.Rect.Width <= 0 || o.Rect.Height <= 0 {
		// Give degenerate objects a minimal footprint so the server
		// accepts them; layout normally prevents this.
		if o.Rect.Width <= 0 {
			o.Rect.Width = 1
		}
		if o.Rect.Height <= 0 {
			o.Rect.Height = 1
		}
	}
	fill := byte(' ')
	switch o.Kind {
	case KindButton:
		fill = '.'
	case KindText:
		fill = ' '
	case KindMenu:
		fill = ':'
	}
	attrs := xserver.WindowAttributes{
		OverrideRedirect: true, // decoration internals are never managed
		Fill:             fill,
		Label:            o.label,
	}
	// A failed creation has no partial effect, so a transient error is
	// retried once before the whole realize is abandoned — a deep
	// decoration tree issues enough requests that giving up on the
	// first hiccup would make frames needlessly fragile.
	id, err := conn.CreateWindow(parent, o.Rect, 0, attrs)
	if err != nil {
		id, err = conn.CreateWindow(parent, o.Rect, 0, attrs)
	}
	if err != nil {
		return fmt.Errorf("objects: realizing %s %q: %w", o.Kind, o.Name, err)
	}
	o.Window = id
	var mask xproto.EventMask
	if o.Bindings != nil {
		mask |= xproto.ButtonPressMask | xproto.ButtonReleaseMask |
			xproto.KeyPressMask | xproto.KeyReleaseMask |
			xproto.EnterWindowMask | xproto.LeaveWindowMask
	}
	if mask != 0 {
		err := conn.SelectInput(id, mask)
		if err != nil {
			err = conn.SelectInput(id, mask)
		}
		if err != nil {
			return err
		}
	}
	for _, c := range o.Children {
		if err := realize(conn, c, id, false); err != nil {
			return err
		}
	}
	// Apply shaping after children exist so union-of-children works.
	if o.Attrs.Shape && o.Kind == KindPanel {
		if err := conn.ShapeCombineRectangles(id, ShapeRects(o)); err != nil {
			return err
		}
	}
	if !isRoot && !(o.Kind == KindPanel && o.Name == "client") {
		if err := conn.MapWindow(id); err != nil {
			return err
		}
	}
	return nil
}

// SyncGeometry pushes layout changes of an already-realized tree back to
// the server (used after dynamic label changes re-run Layout).
func SyncGeometry(conn *xserver.Conn, root *Object) error {
	var firstErr error
	root.Walk(func(o *Object) {
		if o.Window == xproto.None {
			return
		}
		if err := conn.MoveResizeWindow(o.Window, o.Rect); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := conn.SetWindowLabel(o.Window, o.label); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// Destroy tears down the realized windows of the tree.
func Destroy(conn *xserver.Conn, root *Object) error {
	if root.Window == xproto.None {
		return nil
	}
	err := conn.DestroyWindow(root.Window)
	root.Walk(func(o *Object) { o.Window = xproto.None })
	return err
}

// FindByWindow returns the object realized as the given window, or nil.
func FindByWindow(root *Object, id xproto.XID) *Object {
	var hit *Object
	root.Walk(func(o *Object) {
		if o.Window == id {
			hit = o
		}
	})
	return hit
}
