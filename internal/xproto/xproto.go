// Package xproto defines the core X11 protocol types shared by the
// simulated X server (internal/xserver) and its clients: resource IDs,
// atoms, event types and masks, window attributes, and configuration
// requests. It models the subset of the X protocol that a reparenting
// window manager exercises.
package xproto

import "fmt"

// XID identifies a server-side resource (window, pixmap, ...). The zero
// XID is never a valid resource; None is used where the protocol allows
// "no window".
type XID uint32

// None is the null resource ID.
const None XID = 0

// PointerRoot is the special focus value meaning "focus follows pointer".
const PointerRoot XID = 1

// Atom names a string interned in the server. Predefined atoms occupy
// the low numbers, matching the spirit (not the exact numbering) of X11.
type Atom uint32

// NoAtom is the null atom.
const NoAtom Atom = 0

// Timestamp is a server-issued monotonically increasing event time.
type Timestamp uint64

// CurrentTime asks the server to substitute the current timestamp.
const CurrentTime Timestamp = 0

// EventType discriminates Event values.
type EventType int

// Event types. The names and semantics follow the X11 core protocol,
// plus ShapeNotify from the SHAPE extension.
const (
	KeyPress EventType = iota + 2
	KeyRelease
	ButtonPress
	ButtonRelease
	MotionNotify
	EnterNotify
	LeaveNotify
	FocusIn
	FocusOut
	Expose
	CreateNotify
	DestroyNotify
	UnmapNotify
	MapNotify
	MapRequest
	ReparentNotify
	ConfigureNotify
	ConfigureRequest
	GravityNotify
	CirculateNotify
	CirculateRequest
	PropertyNotify
	ClientMessage
	ShapeNotify
)

var eventTypeNames = map[EventType]string{
	KeyPress:         "KeyPress",
	KeyRelease:       "KeyRelease",
	ButtonPress:      "ButtonPress",
	ButtonRelease:    "ButtonRelease",
	MotionNotify:     "MotionNotify",
	EnterNotify:      "EnterNotify",
	LeaveNotify:      "LeaveNotify",
	FocusIn:          "FocusIn",
	FocusOut:         "FocusOut",
	Expose:           "Expose",
	CreateNotify:     "CreateNotify",
	DestroyNotify:    "DestroyNotify",
	UnmapNotify:      "UnmapNotify",
	MapNotify:        "MapNotify",
	MapRequest:       "MapRequest",
	ReparentNotify:   "ReparentNotify",
	ConfigureNotify:  "ConfigureNotify",
	ConfigureRequest: "ConfigureRequest",
	GravityNotify:    "GravityNotify",
	CirculateNotify:  "CirculateNotify",
	CirculateRequest: "CirculateRequest",
	PropertyNotify:   "PropertyNotify",
	ClientMessage:    "ClientMessage",
	ShapeNotify:      "ShapeNotify",
}

func (t EventType) String() string {
	if s, ok := eventTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// EventMask selects which event categories a client receives on a window.
type EventMask uint32

// Event mask bits, mirroring X11.
const (
	NoEventMask            EventMask = 0
	KeyPressMask           EventMask = 1 << 0
	KeyReleaseMask         EventMask = 1 << 1
	ButtonPressMask        EventMask = 1 << 2
	ButtonReleaseMask      EventMask = 1 << 3
	EnterWindowMask        EventMask = 1 << 4
	LeaveWindowMask        EventMask = 1 << 5
	PointerMotionMask      EventMask = 1 << 6
	ExposureMask           EventMask = 1 << 15
	StructureNotifyMask    EventMask = 1 << 17
	ResizeRedirectMask     EventMask = 1 << 18
	SubstructureNotifyMask EventMask = 1 << 19
	// SubstructureRedirectMask is the window-manager mask: MapRequest,
	// ConfigureRequest and CirculateRequest are redirected to the one
	// client selecting it on a window.
	SubstructureRedirectMask EventMask = 1 << 20
	FocusChangeMask          EventMask = 1 << 21
	PropertyChangeMask       EventMask = 1 << 22
)

// Modifier bits for key/button state, mirroring X11.
const (
	ShiftMask   uint16 = 1 << 0
	LockMask    uint16 = 1 << 1
	ControlMask uint16 = 1 << 2
	Mod1Mask    uint16 = 1 << 3 // Meta/Alt
	Mod2Mask    uint16 = 1 << 4
	Mod3Mask    uint16 = 1 << 5
	Mod4Mask    uint16 = 1 << 6
	Mod5Mask    uint16 = 1 << 7
	Button1Mask uint16 = 1 << 8
	Button2Mask uint16 = 1 << 9
	Button3Mask uint16 = 1 << 10
	Button4Mask uint16 = 1 << 11
	Button5Mask uint16 = 1 << 12
	// AnyModifier matches any modifier state in passive grabs.
	AnyModifier uint16 = 1 << 15
)

// Pointer buttons.
const (
	Button1 = 1
	Button2 = 2
	Button3 = 3
	Button4 = 4
	Button5 = 5
	// AnyButton matches any button in passive grabs.
	AnyButton = 0
)

// Window classes.
type WindowClass int

const (
	InputOutput WindowClass = iota
	InputOnly
)

// Stack modes for ConfigureWindow.
type StackMode int

const (
	Above StackMode = iota
	Below
	TopIf
	BottomIf
	Opposite
)

// Configure value mask bits: which fields of a ConfigureRequest are set.
const (
	CWX           uint16 = 1 << 0
	CWY           uint16 = 1 << 1
	CWWidth       uint16 = 1 << 2
	CWHeight      uint16 = 1 << 3
	CWBorderWidth uint16 = 1 << 4
	CWSibling     uint16 = 1 << 5
	CWStackMode   uint16 = 1 << 6
)

// Property change modes.
type PropMode int

const (
	PropModeReplace PropMode = iota
	PropModePrepend
	PropModeAppend
)

// Property notify states.
const (
	PropertyNewValue = 0
	PropertyDeleted  = 1
)

// Map states reported by GetWindowAttributes.
type MapState int

const (
	IsUnmapped MapState = iota
	IsUnviewable
	IsViewable
)

// WindowChanges carries the fields of a ConfigureWindow request; Mask
// says which fields are meaningful.
type WindowChanges struct {
	Mask        uint16
	X, Y        int
	Width       int
	Height      int
	BorderWidth int
	Sibling     XID
	StackMode   StackMode
}

// Event is the single fat event record used for every event type; only
// the fields relevant to Type are meaningful. Using one struct keeps the
// in-memory server simple and allocation-free on the hot dispatch path.
type Event struct {
	Type EventType
	// Window is the event window: the window the event was selected on.
	Window XID
	// Subwindow/Child: source child for pointer events, child window for
	// requests (MapRequest's window, ConfigureRequest's window, ...).
	Subwindow XID
	// Parent for Create/Reparent/Map/Unmap/Configure request events.
	Parent XID
	// Root of the screen the event occurred on.
	Root XID
	Time Timestamp

	// Pointer events.
	X, Y         int // event-window-relative
	RootX, RootY int
	Button       int
	Keysym       string
	State        uint16 // modifier+button state

	// Geometry (Configure*, Create, Expose, Gravity).
	GX, GY        int
	Width, Height int
	BorderWidth   int
	Sibling       XID
	StackMode     StackMode
	ValueMask     uint16

	// Property events.
	Atom          Atom
	PropertyState int

	// ReparentNotify / Map / Unmap.
	OverrideRedirect bool
	FromConfigure    bool

	// ClientMessage payload.
	MessageType Atom
	Format      int
	Data        []byte

	// SendEvent is true for events generated via SendEvent (synthetic).
	SendEvent bool

	// Shaped reports the new shaped state on ShapeNotify.
	Shaped bool
}

// Rect is an axis-aligned rectangle. X and Y are the top-left corner.
type Rect struct {
	X, Y, Width, Height int
}

// Contains reports whether the point (px, py) falls inside r.
func (r Rect) Contains(px, py int) bool {
	return px >= r.X && py >= r.Y && px < r.X+r.Width && py < r.Y+r.Height
}

// Intersect returns the intersection of r and o, and whether it is
// non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	x1 := max(r.X, o.X)
	y1 := max(r.Y, o.Y)
	x2 := min(r.X+r.Width, o.X+o.Width)
	y2 := min(r.Y+r.Height, o.Y+o.Height)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}, false
	}
	return Rect{X: x1, Y: y1, Width: x2 - x1, Height: y2 - y1}, true
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.Width <= 0 || r.Height <= 0 }

func (r Rect) String() string {
	return fmt.Sprintf("%dx%d%+d%+d", r.Width, r.Height, r.X, r.Y)
}

// WMState values stored in the ICCCM WM_STATE property.
const (
	WithdrawnState = 0
	NormalState    = 1
	IconicState    = 3
)

// Predefined atom names interned by every server at startup. Clients may
// intern further atoms at runtime.
var PredefinedAtoms = []string{
	"PRIMARY", "SECONDARY", "WM_NAME", "WM_ICON_NAME", "WM_CLASS",
	"WM_NORMAL_HINTS", "WM_HINTS", "WM_COMMAND", "WM_CLIENT_MACHINE",
	"WM_STATE", "WM_TRANSIENT_FOR", "WM_PROTOCOLS", "WM_DELETE_WINDOW",
	"WM_TAKE_FOCUS", "STRING", "ATOM", "WINDOW", "CARDINAL", "INTEGER",
	"SWM_ROOT", "SWM_COMMAND", "SWM_HINTS", "SWM_STICKY",
}
