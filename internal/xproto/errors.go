package xproto

import (
	"errors"
	"fmt"
	"strings"
)

// ErrorCode is an X11 core protocol error code. The numeric values
// match the core protocol encoding so that logs and counters line up
// with what a real server would report.
type ErrorCode uint8

const (
	BadRequest  ErrorCode = 1
	BadValue    ErrorCode = 2
	BadWindow   ErrorCode = 3
	BadAtom     ErrorCode = 5
	BadMatch    ErrorCode = 8
	BadDrawable ErrorCode = 9
	BadAccess   ErrorCode = 10
)

var errorCodeNames = map[ErrorCode]string{
	BadRequest:  "BadRequest",
	BadValue:    "BadValue",
	BadWindow:   "BadWindow",
	BadAtom:     "BadAtom",
	BadMatch:    "BadMatch",
	BadDrawable: "BadDrawable",
	BadAccess:   "BadAccess",
}

func (c ErrorCode) String() string {
	if name, ok := errorCodeNames[c]; ok {
		return name
	}
	return fmt.Sprintf("BadError(%d)", uint8(c))
}

// ParseErrorCode maps a code name ("BadWindow") back to its ErrorCode.
func ParseErrorCode(name string) (ErrorCode, bool) {
	for c, n := range errorCodeNames {
		if n == name {
			return c, true
		}
	}
	return 0, false
}

// XError is a typed X protocol error. Code is always set; Major names
// the failing request ("ConfigureWindow"), Resource the offending
// resource, and Detail carries human-readable context — each only when
// known.
type XError struct {
	Code     ErrorCode
	Major    string
	Resource XID
	Detail   string
}

// Error renders the same message shapes the untyped fmt.Errorf sites
// produced ("xserver: BadWindow 0x200001", "xserver: BadValue:
// zero-sized window ..."), so log output and any string matching stay
// stable across the migration.
func (e *XError) Error() string {
	var b strings.Builder
	b.WriteString("xserver: ")
	b.WriteString(e.Code.String())
	switch {
	case e.Detail != "":
		b.WriteString(": ")
		b.WriteString(e.Detail)
	case e.Resource != None:
		fmt.Fprintf(&b, " 0x%x", uint32(e.Resource))
	}
	return b.String()
}

// Is makes errors.Is(err, target) match partially: zero-valued fields
// of the target act as wildcards, so the ErrBad* sentinels match any
// error of their code while a fully-populated target requires an exact
// match.
func (e *XError) Is(target error) bool {
	t, ok := target.(*XError)
	if !ok {
		return false
	}
	if t.Code != 0 && t.Code != e.Code {
		return false
	}
	if t.Major != "" && t.Major != e.Major {
		return false
	}
	if t.Resource != None && t.Resource != e.Resource {
		return false
	}
	return true
}

// Sentinels for errors.Is: match any XError with the given code.
var (
	ErrBadRequest  = &XError{Code: BadRequest}
	ErrBadValue    = &XError{Code: BadValue}
	ErrBadWindow   = &XError{Code: BadWindow}
	ErrBadAtom     = &XError{Code: BadAtom}
	ErrBadMatch    = &XError{Code: BadMatch}
	ErrBadDrawable = &XError{Code: BadDrawable}
	ErrBadAccess   = &XError{Code: BadAccess}
)

// CodeOf extracts the protocol error code from err's chain. ok is false
// when err carries no XError.
func CodeOf(err error) (ErrorCode, bool) {
	var xe *XError
	if errors.As(err, &xe) {
		return xe.Code, true
	}
	return 0, false
}
