package xproto

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorCodeStringRoundTrip(t *testing.T) {
	cases := []struct {
		code ErrorCode
		name string
	}{
		{BadRequest, "BadRequest"},
		{BadValue, "BadValue"},
		{BadWindow, "BadWindow"},
		{BadAtom, "BadAtom"},
		{BadMatch, "BadMatch"},
		{BadDrawable, "BadDrawable"},
		{BadAccess, "BadAccess"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.code.String(); got != tc.name {
				t.Errorf("String() = %q, want %q", got, tc.name)
			}
			back, ok := ParseErrorCode(tc.name)
			if !ok || back != tc.code {
				t.Errorf("ParseErrorCode(%q) = %v, %v; want %v, true", tc.name, back, ok, tc.code)
			}
		})
	}
}

func TestErrorCodeValuesMatchProtocol(t *testing.T) {
	// The numeric values are the X11 core protocol encodings.
	want := map[ErrorCode]uint8{
		BadRequest: 1, BadValue: 2, BadWindow: 3, BadAtom: 5,
		BadMatch: 8, BadDrawable: 9, BadAccess: 10,
	}
	for code, num := range want {
		if uint8(code) != num {
			t.Errorf("%s = %d, want %d", code, uint8(code), num)
		}
	}
}

func TestErrorCodeStringUnknown(t *testing.T) {
	if got := ErrorCode(42).String(); got != "BadError(42)" {
		t.Errorf("unknown code String() = %q", got)
	}
	if _, ok := ParseErrorCode("BadBanana"); ok {
		t.Error("ParseErrorCode accepted an unknown name")
	}
}

func TestXErrorMessageFormats(t *testing.T) {
	cases := []struct {
		name string
		err  *XError
		want string
	}{
		{
			name: "resource only",
			err:  &XError{Code: BadWindow, Resource: 0x200001},
			want: "xserver: BadWindow 0x200001",
		},
		{
			name: "detail wins over resource",
			err:  &XError{Code: BadValue, Resource: 0x200001, Detail: "zero-sized window 0x0"},
			want: "xserver: BadValue: zero-sized window 0x0",
		},
		{
			name: "bare code",
			err:  &XError{Code: BadAccess},
			want: "xserver: BadAccess",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.err.Error(); got != tc.want {
				t.Errorf("Error() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestXErrorIs(t *testing.T) {
	err := &XError{Code: BadWindow, Major: "MapWindow", Resource: 0x200005}
	cases := []struct {
		name   string
		target error
		want   bool
	}{
		{"code sentinel", ErrBadWindow, true},
		{"wrong code sentinel", ErrBadMatch, false},
		{"full match", &XError{Code: BadWindow, Major: "MapWindow", Resource: 0x200005}, true},
		{"wrong major", &XError{Code: BadWindow, Major: "DestroyWindow"}, false},
		{"wrong resource", &XError{Code: BadWindow, Resource: 0x200009}, false},
		{"resource wildcard", &XError{Code: BadWindow, Major: "MapWindow"}, true},
		{"non-xerror target", errors.New("xserver: BadWindow 0x200005"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := errors.Is(err, tc.target); got != tc.want {
				t.Errorf("errors.Is = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestXErrorThroughWrapping(t *testing.T) {
	inner := &XError{Code: BadDrawable, Major: "GetGeometry", Resource: 0x300000}
	wrapped := fmt.Errorf("manage 0x300000: %w", inner)

	if !errors.Is(wrapped, ErrBadDrawable) {
		t.Error("errors.Is failed through fmt.Errorf wrapping")
	}
	var xe *XError
	if !errors.As(wrapped, &xe) {
		t.Fatal("errors.As failed through fmt.Errorf wrapping")
	}
	if xe.Major != "GetGeometry" || xe.Resource != 0x300000 {
		t.Errorf("errors.As recovered %+v", xe)
	}
	code, ok := CodeOf(wrapped)
	if !ok || code != BadDrawable {
		t.Errorf("CodeOf = %v, %v; want BadDrawable, true", code, ok)
	}
	if _, ok := CodeOf(errors.New("plain")); ok {
		t.Error("CodeOf matched a non-XError")
	}
}
