package repro_bench

import (
	"strings"
	"testing"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/icccm"
	"repro/internal/raster"
	"repro/internal/templates"
	"repro/internal/xserver"
)

// TestFigure1OpenLookDecoration regenerates paper Figure 1: a client
// decorated with the openLook panel definition.
func TestFigure1OpenLookDecoration(t *testing.T) {
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	app, err := clients.Launch(s, clients.Config{
		Instance: "xterm", Class: "XTerm", Name: "swm demo",
		Width: 320, Height: 168,
	})
	if err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		t.Fatal("client not managed")
	}
	if c.Decoration() != "openLook" {
		t.Fatalf("decoration = %q", c.Decoration())
	}
	art, err := raster.RenderWindow(wm.Conn(), c.FrameWindow(), raster.Options{DrawLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	// Structural assertions on the rendered figure: pulldown glyph at
	// the left of the title row, name centered, nail at the right.
	lines := strings.Split(art, "\n")
	title := lines[0]
	if !strings.Contains(title, "v") {
		t.Errorf("pulldown glyph missing from titlebar: %q", title)
	}
	if !strings.Contains(title, "swm demo") {
		t.Errorf("WM_NAME missing from titlebar: %q", title)
	}
	if !strings.Contains(title, "O") {
		t.Errorf("nail glyph missing from titlebar: %q", title)
	}
	nameIdx := strings.Index(title, "swm demo")
	nailIdx := strings.LastIndex(title, "O")
	vIdx := strings.Index(title, "v")
	if !(vIdx < nameIdx && nameIdx < nailIdx) {
		t.Errorf("titlebar order wrong (v=%d name=%d nail=%d): %q", vIdx, nameIdx, nailIdx, title)
	}
	// The client area occupies the rows below the titlebar.
	if len(lines) < 5 {
		t.Fatalf("figure too short:\n%s", art)
	}
}

// TestFigure2RootPanel regenerates paper Figure 2: the reparented
// RootPanel with its 4x2 grid of buttons.
func TestFigure2RootPanel(t *testing.T) {
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		t.Fatal(err)
	}
	db.MustPut("swm*rootPanels", "RootPanel")
	// The paper's definition, verbatim.
	db.MustPut("Swm*panel.RootPanel",
		"button quit +0+0\nbutton restart +1+0\nbutton iconify +2+0\nbutton deiconify +3+0\n"+
			"button move +0+1\nbutton resize +1+1\nbutton raise +2+1\nbutton lower +3+1")
	wm, err := core.New(s, core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	wm.Pump()
	panels := wm.Screens()[0].RootPanels()
	if len(panels) != 1 {
		t.Fatalf("%d root panels", len(panels))
	}
	art, err := raster.RenderWindow(wm.Conn(), panels[0].FrameWindow(), raster.Options{DrawLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"quit", "restart", "iconify", "deiconify", "move", "resize", "raise", "lower"} {
		if !strings.Contains(art, label) {
			t.Errorf("button %q missing from figure:\n%s", label, art)
		}
	}
	// Row structure: quit row above move row.
	if strings.Index(art, "quit") > strings.Index(art, "move") {
		t.Errorf("rows out of order:\n%s", art)
	}
}

// TestFigure3Panner regenerates paper Figure 3: the Virtual Desktop
// panner with miniatures and the viewport outline.
func TestFigure3Panner(t *testing.T) {
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true, EnablePanner: true})
	if err != nil {
		t.Fatal(err)
	}
	scr := wm.Screens()[0]
	positions := [][4]int{
		{200, 150, 600, 400}, {1400, 300, 700, 500}, {2600, 200, 300, 300},
		{600, 1500, 500, 350}, {2200, 1800, 800, 600}, {3400, 2600, 300, 400},
	}
	for i, p := range positions {
		_, err := clients.Launch(s, clients.Config{
			Instance: "app" + string(rune('a'+i)), Class: "App",
			Width: p[2], Height: p[3],
			NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: p[0], Y: p[1]},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wm.Pump()
	wm.PanTo(scr, 25, 25)
	wm.Pump() // flush the coalesced viewport move before rendering
	p := scr.Panner()
	if got := p.MiniatureCount(); got != 6 {
		t.Fatalf("%d miniatures, want 6", got)
	}
	art, err := raster.RenderWindow(wm.Conn(), p.Window(), raster.Options{ScaleX: 2, ScaleY: 4})
	if err != nil {
		t.Fatal(err)
	}
	// All six miniatures show as filled boxes.
	if strings.Count(art, "#") < 6 {
		t.Errorf("miniatures missing from figure:\n%s", art)
	}
	// The viewport outline sits near the top-left (pan is 25,25).
	if !strings.Contains(strings.Split(art, "\n")[0], "+") {
		t.Errorf("no outline on the top row:\n%s", art)
	}
}
