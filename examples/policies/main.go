// Policy freedom: the paper's core claim — "From these four basic
// objects, an infinite number of window management policies can be
// implemented" — without learning a programming language. This example
// decorates the same client three ways: with the OpenLook+ template,
// with the Motif emulation, and with a policy written from scratch in
// a dozen resource lines (buttons at the side and below the client).
package main

import (
	"fmt"
	"log"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/templates"
	"repro/internal/xrdb"
	"repro/internal/xserver"
)

// scratchPolicy is a complete look-and-feel defined in resources alone:
// a tool column on the left, the client beside it, a status bar below —
// "Objects can easily be placed to the sides or below the client window
// in addition to the more traditional titlebar appearance" (§4.1.1).
const scratchPolicy = `
Swm*panel.sidebar: \
	panel tools +0+0 \
	panel client +1+0 \
	text status +C+1
Swm*panel.tools: \
	button close +0+0 \
	button grow +0+1 \
	button mini +0+2
swm*decoration: sidebar
swm*button.close.label: X
swm*button.close.bindings: <Btn1> : f.delete
swm*button.grow.label: +
swm*button.grow.bindings: <Btn1> : f.save f.zoom
swm*button.mini.label: _
swm*button.mini.bindings: <Btn1> : f.iconify
swm*text.status.label: ready
Swm*panel.Xicon: button iconname +C+0
swm*iconPanel: Xicon
swm*button.iconname.bindings: <Btn1> : f.deiconify
`

func main() {
	log.SetFlags(0)

	policies := []struct {
		name string
		load func() (*xrdb.DB, error)
	}{
		{"OpenLook+ template", func() (*xrdb.DB, error) { return templates.Load(templates.OpenLook) }},
		{"Motif emulation", func() (*xrdb.DB, error) { return templates.Load(templates.Motif) }},
		{"scratch sidebar policy", func() (*xrdb.DB, error) {
			db := xrdb.New()
			return db, db.LoadString(scratchPolicy)
		}},
	}

	for _, p := range policies {
		db, err := p.load()
		if err != nil {
			log.Fatal(err)
		}
		server := xserver.NewServer()
		wm, err := core.New(server, core.Options{DB: db})
		if err != nil {
			log.Fatal(err)
		}
		app, err := clients.Launch(server, clients.Config{
			Instance: "xterm", Class: "XTerm", Name: "same client",
			Width: 280, Height: 140,
		})
		if err != nil {
			log.Fatal(err)
		}
		wm.Pump()
		c, ok := wm.ClientOf(app.Win)
		if !ok {
			log.Fatal("client not managed")
		}
		art, err := raster.RenderWindow(wm.Conn(), c.FrameWindow(), raster.Options{DrawLabels: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (decoration %q) ---\n%s\n", p.name, c.Decoration(), art)
	}
	fmt.Println("Three look-and-feels; zero lines of code changed — only resources.")
}
