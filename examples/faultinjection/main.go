// Fault injection: run the window manager while the simulated server
// fails a fraction of its requests, then reproduce the asynchronous
// death race deterministically — a client window destroyed between the
// event that prompted a request and the request itself. The WM is
// expected to survive both, unmanage the dead client cleanly, and
// account for every error in wm.Stats().
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)

	server := xserver.NewServer()
	wm, err := core.New(server, core.Options{
		VirtualDesktop: true, EnablePanner: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline := server.NumWindows()

	// Observe every error the WM's connection sees, exactly once each —
	// the XSetErrorHandler analogue.
	handled := 0
	wm.Conn().SetErrorHandler(func(xe *xproto.XError) { handled++ })

	// 1. Spurious failures: every 9th request returns BadWindow without
	// anything actually dying. The WM logs and carries on.
	wm.Conn().SetFaultPolicy(&xserver.FaultPolicy{
		EveryN: 9, Code: xproto.BadWindow,
	})
	var apps []*clients.App
	for i := 0; i < 8; i++ {
		app, err := clients.Launch(server, clients.Config{
			Instance: fmt.Sprintf("app%d", i), Class: "XTerm",
			Width: 200, Height: 120,
		})
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, app)
		wm.Pump()
		if c, ok := wm.ClientOf(app.Win); ok && i%2 == 0 {
			_ = wm.Iconify(c)
		}
	}
	injected := wm.Conn().FaultCount()
	wm.Conn().SetFaultPolicy(nil)

	fmt.Printf("injected %d spurious BadWindow errors; error handler saw %d\n",
		injected, handled)

	// 2. The death race, deterministically: the next ConfigureWindow the
	// WM issues kills its target first. The client asks for a resize;
	// by the time the WM honors it, the window is gone.
	victim := apps[3]
	wm.Conn().SetFaultPolicy(&xserver.FaultPolicy{
		Ops: []string{"ConfigureWindow"}, EveryN: 1, Times: 1,
		Code: xproto.BadWindow, KillTarget: true,
	})
	_ = victim.Resize(300, 200)
	wm.Pump()
	wm.Conn().SetFaultPolicy(nil)

	if _, ok := wm.ClientOf(victim.Win); ok {
		log.Fatal("dead client is still managed")
	}
	fmt.Println("victim unmanaged after dying mid-request")

	// 3. Tear everything down and check nothing leaked server-side.
	for _, app := range apps {
		_ = app.Withdraw()
		wm.Pump()
		app.Close()
		wm.Pump()
	}
	for i := 0; i < 20 && server.NumWindows() != baseline; i++ {
		wm.Pump()
	}

	st := wm.Stats()
	fmt.Printf("managed %d, unmanaged %d, death races %d\n",
		st.Managed, st.Unmanaged, st.DeathRaces)
	codes := make([]string, 0, len(st.Errors))
	for code := range st.Errors {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Printf("errors[%s] = %d\n", code, st.Errors[code])
	}
	fmt.Printf("server windows: %d (baseline %d)\n", server.NumWindows(), baseline)
}
