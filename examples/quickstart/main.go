// Quickstart: the minimal swm program — start the simulated display,
// run the window manager with the built-in default configuration,
// launch one client, and look at the result.
package main

import (
	"fmt"
	"log"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)

	// 1. A display server (one 1152x900 screen by default).
	server := xserver.NewServer()

	// 2. The window manager. A nil DB loads the default template.
	wm, err := core.New(server, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A client application.
	term, err := clients.Xterm(server, "hello, swm")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Let the WM process the MapRequest and manage the window.
	wm.Pump()

	c, ok := wm.ClientOf(term.Win)
	if !ok {
		log.Fatal("xterm was not managed")
	}
	fmt.Printf("managed %q with decoration %q, frame %v\n",
		c.Name, c.Decoration(), c.FrameRect)

	// 5. Drive it through the function interface.
	ctx := &core.FuncContext{Client: c, Screen: wm.Screens()[0]}
	if err := wm.ExecuteString(ctx, "f.iconify"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("iconified via f.iconify")
	if err := wm.ExecuteString(ctx, "f.deiconify f.raise"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored via f.deiconify f.raise")

	// 6. Render the decorated window.
	art, err := raster.RenderWindow(wm.Conn(), c.FrameWindow(), raster.Options{DrawLabels: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", art)
}
