// SHAPE support (paper §5.1): shaped clients like oclock and xeyes are
// recognized by swm, which prepends "shaped" to their resource lookups
// so they can receive the invisible "shapeit" decoration — "invoking
// the X11R4 oclock or xeyes clients and they would be displayed without
// visible decoration".
package main

import (
	"fmt"
	"log"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/templates"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)

	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	server := xserver.NewServer()
	wm, err := core.New(server, core.Options{DB: db})
	if err != nil {
		log.Fatal(err)
	}

	// A rectangular clock and two shaped clients.
	xclock, err := clients.Xclock(server)
	if err != nil {
		log.Fatal(err)
	}
	oclock, err := clients.Oclock(server)
	if err != nil {
		log.Fatal(err)
	}
	xeyes, err := clients.Xeyes(server)
	if err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	fmt.Println("decoration selection (shaped clients get the 'shaped' resource prefix):")
	for _, app := range []*clients.App{xclock, oclock, xeyes} {
		c, ok := wm.ClientOf(app.Win)
		if !ok {
			log.Fatalf("%s not managed", app.Cfg.Instance)
		}
		shaped := "rectangular"
		if c.Shaped {
			shaped = "shaped"
		}
		fmt.Printf("  %-8s %-12s decoration=%s\n", c.Class.Instance, shaped, c.Decoration())
	}

	// The shapeit frame takes the shape of its contents: no visible
	// decoration around the round clock.
	c, _ := wm.ClientOf(oclock.Win)
	shapedFrame, rects, err := wm.Conn().ShapeQuery(c.FrameWindow())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noclock frame shaped=%v, bounding rects=%v\n", shapedFrame, rects)

	// Render the oclock frame: the diamond shape shows through, no
	// titlebar anywhere.
	art, err := raster.RenderWindow(wm.Conn(), c.FrameWindow(), raster.Options{
		ScaleX: 4, ScaleY: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noclock with invisible (shapeit) decoration:\n%s\n", art)

	// Contrast: the xclock with its normal openLook titlebar.
	rc, _ := wm.ClientOf(xclock.Win)
	art, err = raster.RenderWindow(wm.Conn(), rc.FrameWindow(), raster.Options{
		ScaleX: 8, ScaleY: 14, DrawLabels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xclock with openLook decoration:\n%s", art)
}
