// Session management: the paper's §7 workflow end to end. A user lays
// out a working environment, swm saves it with f.places, "X restarts",
// and the saved file brings every client back — size, position, icon
// position, sticky flag and iconic state — regardless of toolkit or
// remote host.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)

	// ---------------- Session 1: the user arranges their desk ----------
	fmt.Println("=== session 1: arranging the environment ===")
	s1 := xserver.NewServer()
	db1, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	wm1, err := core.New(s1, core.Options{DB: db1, VirtualDesktop: true})
	if err != nil {
		log.Fatal(err)
	}

	term, err := clients.Xterm(s1, "work shell")
	if err != nil {
		log.Fatal(err)
	}
	clock, err := clients.Xclock(s1)
	if err != nil {
		log.Fatal(err)
	}
	// A remote client: running on another machine entirely (§7.1).
	remote, err := clients.Launch(s1, clients.Config{
		Instance: "xload", Class: "XLoad", Width: 80, Height: 60,
		Command: []string{"xload"}, Machine: "kandinsky",
	})
	if err != nil {
		log.Fatal(err)
	}
	wm1.Pump()

	tc, _ := wm1.ClientOf(term.Win)
	cc, _ := wm1.ClientOf(clock.Win)
	rc, _ := wm1.ClientOf(remote.Win)

	// Arrange: move the terminal, stick the clock, iconify the monitor.
	wm1.MoveClientTo(tc, 700, 500)
	if err := wm1.Stick(cc); err != nil {
		log.Fatal(err)
	}
	if err := wm1.Iconify(rc); err != nil {
		log.Fatal(err)
	}
	wm1.MoveIcon(rc, 10, 10)
	for _, c := range []*core.Client{tc, cc, rc} {
		fmt.Printf("  %-8s state=%d sticky=%v frame=%v\n",
			c.Class.Instance, c.State, c.Sticky, c.FrameRect)
	}

	// Save with f.places.
	if err := wm1.ExecuteString(&core.FuncContext{Screen: wm1.Screens()[0]}, "f.places"); err != nil {
		log.Fatal(err)
	}
	placesFile := wm1.LastPlaces()
	fmt.Printf("\nf.places wrote the .xinitrc replacement:\n%s\n", placesFile)

	// ---------------- X restarts --------------------------------------
	fmt.Println("=== X restarts: replaying the places file ===")
	s2 := xserver.NewServer()
	hints, err := session.ParsePlaces(placesFile)
	if err != nil {
		log.Fatal(err)
	}
	boot := s2.Connect("xinitrc")
	var sb strings.Builder
	for _, h := range hints {
		sb.WriteString(session.Encode(h))
		sb.WriteByte('\n')
	}
	root := s2.Screens()[0].Root
	if err := boot.ChangeProperty(root, boot.InternAtom("SWM_HINTS"),
		boot.InternAtom("STRING"), 8, xproto.PropModeAppend, []byte(sb.String())); err != nil {
		log.Fatal(err)
	}
	boot.Close()

	db2, _ := templates.Load(templates.OpenLook)
	wm2, err := core.New(s2, core.Options{DB: db2, VirtualDesktop: true})
	if err != nil {
		log.Fatal(err)
	}
	// The places file restarts each client with its exact WM_COMMAND.
	term2, _ := clients.Xterm(s2, "work shell")
	clock2, _ := clients.Xclock(s2)
	remote2, _ := clients.Launch(s2, clients.Config{
		Instance: "xload", Class: "XLoad", Width: 80, Height: 60,
		Command: []string{"xload"}, Machine: "kandinsky",
	})
	wm2.Pump()

	fmt.Println("restored clients:")
	for _, app := range []*clients.App{term2, clock2, remote2} {
		c, ok := wm2.ClientOf(app.Win)
		if !ok {
			log.Fatalf("%s not managed after restart", app.Cfg.Instance)
		}
		state := "normal"
		if c.State == xproto.IconicState {
			state = "iconic"
		}
		sticky := ""
		if c.Sticky {
			sticky = " [sticky]"
		}
		machine := "local"
		if c.Machine != "" {
			machine = "on " + c.Machine
		}
		fmt.Printf("  %-8s %s frame=%v%s (%s)\n",
			c.Class.Instance, state, c.FrameRect, sticky, machine)
	}
}
