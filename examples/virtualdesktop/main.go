// Virtual Desktop rooms: the paper's §6 scenario — "it is very easy to
// implement a rooms like environment by grouping windows into various
// quadrants of the desktop". This example builds four rooms (mail,
// code, docs, graphics) on a 4x desktop, keeps a clock and mail
// notifier sticky, binds quadrant jumps, and walks through the rooms.
package main

import (
	"fmt"
	"log"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/icccm"
	"repro/internal/templates"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)

	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	// The sticky environment (paper §6.2): clock and mail notifier stay
	// on the glass.
	db.MustPut("swm*XClock*sticky", "True")
	db.MustPut("swm*XBiff*sticky", "True")
	// Rooms via root key bindings: Meta+F1..F4 jump to quadrants.
	db.MustPut("swm*root.bindings", `Meta <Key>F1 : f.pangoto(0,0)
Meta <Key>F2 : f.pangoto(1152,0)
Meta <Key>F3 : f.pangoto(0,900)
Meta <Key>F4 : f.pangoto(1152,900)`)

	server := xserver.NewServer()
	wm, err := core.New(server, core.Options{
		DB:             db,
		VirtualDesktop: true,
		DesktopWidth:   2304, DesktopHeight: 1800, // 2x2 rooms
		EnablePanner: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	scr := wm.Screens()[0]

	// Populate the rooms.
	rooms := []struct {
		name string
		apps []clients.Config
	}{
		{"mail (room 1: 0,0)", []clients.Config{
			{Instance: "xmh", Class: "Xmh", Width: 700, Height: 600,
				NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: 100, Y: 100}},
		}},
		{"code (room 2: 1152,0)", []clients.Config{
			{Instance: "emacs", Class: "Emacs", Width: 800, Height: 700,
				NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: 1252, Y: 80}},
			{Instance: "xterm", Class: "XTerm", Width: 500, Height: 300,
				NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: 1700, Y: 500}},
		}},
		{"docs (room 3: 0,900)", []clients.Config{
			{Instance: "xdvi", Class: "XDvi", Width: 600, Height: 800,
				NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: 150, Y: 980}},
		}},
		{"graphics (room 4: 1152,900)", []clients.Config{
			{Instance: "xfig", Class: "XFig", Width: 900, Height: 700,
				NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: 1300, Y: 1000}},
		}},
	}
	for _, room := range rooms {
		for _, cfg := range room.apps {
			if _, err := clients.Launch(server, cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
	// The sticky environment.
	if _, err := clients.Xclock(server); err != nil {
		log.Fatal(err)
	}
	if _, err := clients.Xbiff(server); err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	fmt.Printf("desktop %dx%d, %d clients\n\n", scr.DesktopW, scr.DesktopH, len(wm.Clients()))

	// Walk the rooms with the bound keys.
	keys := []string{"F1", "F2", "F3", "F4"}
	for i, room := range rooms {
		server.FakeKeyPress(keys[i], 8 /* Mod1 */)
		wm.Pump()
		vp := scr.Viewport()
		visible := []string{}
		for _, c := range wm.Clients() {
			if c.IsInternal() {
				continue
			}
			r := c.FrameRect
			if c.Sticky {
				visible = append(visible, c.Class.Instance+"(sticky)")
				continue
			}
			if ix, ok := r.Intersect(vp); ok && !ix.Empty() {
				visible = append(visible, c.Class.Instance)
			}
		}
		fmt.Printf("%-26s viewport %v -> visible: %v\n", room.name, vp, visible)
	}

	// The panner shows the whole layout at once.
	fmt.Println("\npanner miniatures (desktop positions / scale):")
	p := scr.Panner()
	for _, c := range p.MiniatureClients() {
		fmt.Printf("  %-8s at (%d,%d)\n", c.Class.Instance,
			c.FrameRect.X/p.Scale(), c.FrameRect.Y/p.Scale())
	}
}
