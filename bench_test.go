// Package repro_bench holds the top-level benchmark harness that
// regenerates the paper's evaluation (§8) and the figure workloads.
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
//
// The paper's evaluation is qualitative: "swm, like any toolkit based
// window manager, has somewhat slower performance than a window manager
// written directly on top of Xlib" (E1), and the X resource database
// beats a private config file for configurability (E2). The benches
// below reproduce the *shape* of those claims across the three window
// managers built in this repository:
//
//	twm  — direct, hardcoded decoration     (fastest)
//	swm  — object/toolkit based, policy-free (middle)
//	gwm  — policy interpreted in Lisp       (slowest)
package repro_bench

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/baseline/gwm"
	"repro/internal/baseline/twm"
	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/perfbench"
	"repro/internal/session"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xrdb"
	"repro/internal/xserver"
)

// wmUnderTest abstracts the three window managers for the comparative
// benchmarks.
type wmUnderTest struct {
	name     string
	setup    func(b *testing.B) (srv *xserver.Server, pump func() int, shutdown func())
	titleWin func(win xproto.XID) xproto.XID
}

func newSwm(b *testing.B, s *xserver.Server) (*core.WM, func() int, func()) {
	b.Helper()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		b.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true})
	if err != nil {
		b.Fatal(err)
	}
	return wm, wm.Pump, wm.Shutdown
}

func newTwm(b *testing.B, s *xserver.Server) (*twm.WM, func() int, func()) {
	b.Helper()
	wm, err := twm.New(s, nil)
	if err != nil {
		b.Fatal(err)
	}
	return wm, wm.Pump, wm.Shutdown
}

func newGwm(b *testing.B, s *xserver.Server) (*gwm.WM, func() int, func()) {
	b.Helper()
	wm, err := gwm.New(s, "")
	if err != nil {
		b.Fatal(err)
	}
	return wm, wm.Pump, wm.Shutdown
}

// launchN starts n clients and pumps the WM once.
func launchN(b *testing.B, s *xserver.Server, pump func() int, n int) []*clients.App {
	b.Helper()
	apps := make([]*clients.App, n)
	for i := 0; i < n; i++ {
		app, err := clients.Launch(s, clients.Config{
			Instance: fmt.Sprintf("bench%d", i), Class: "Bench",
			Width: 200, Height: 150, X: 10 + i, Y: 10 + i,
		})
		if err != nil {
			b.Fatal(err)
		}
		apps[i] = app
	}
	pump()
	return apps
}

// --- E1: manage cost — twm < swm < gwm -------------------------------------

func benchManage(b *testing.B, n int, mk func(b *testing.B, s *xserver.Server) (func() int, func())) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := xserver.NewServer()
		pump, shutdown := mk(b, s)
		apps := make([]*clients.App, n)
		for j := 0; j < n; j++ {
			app, err := clients.Launch(s, clients.Config{
				Instance: fmt.Sprintf("w%d", j), Class: "Bench",
				Width: 200, Height: 150, X: 10 + j, Y: 10 + j,
			})
			if err != nil {
				b.Fatal(err)
			}
			apps[j] = app
		}
		b.StartTimer()
		pump() // MapRequest -> manage for all n windows
		b.StopTimer()
		shutdown()
	}
}

func BenchmarkManageWindow_swm_1(b *testing.B) {
	benchManage(b, 1, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newSwm(b, s)
		return pump, down
	})
}

func BenchmarkManageWindow_twm_1(b *testing.B) {
	benchManage(b, 1, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newTwm(b, s)
		return pump, down
	})
}

func BenchmarkManageWindow_gwm_1(b *testing.B) {
	benchManage(b, 1, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newGwm(b, s)
		return pump, down
	})
}

func BenchmarkManageWindow_swm_25(b *testing.B) {
	benchManage(b, 25, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newSwm(b, s)
		return pump, down
	})
}

func BenchmarkManageWindow_twm_25(b *testing.B) {
	benchManage(b, 25, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newTwm(b, s)
		return pump, down
	})
}

func BenchmarkManageWindow_gwm_25(b *testing.B) {
	benchManage(b, 25, func(b *testing.B, s *xserver.Server) (func() int, func()) {
		_, pump, down := newGwm(b, s)
		return pump, down
	})
}

// --- E1: button dispatch cost ------------------------------------------------

// benchButtonDispatch measures one titlebar click (press+release)
// through each WM's event machinery.
func BenchmarkButtonDispatch_swm(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newSwm(b, s)
	apps := launchN(b, s, pump, 1)
	c, _ := wm.ClientOf(apps[0].Win)
	nameObj := c.Frame().Find("name")
	rx, ry, _, err := wm.Conn().TranslateCoordinates(nameObj.Window, wm.Screens()[0].Root, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	s.FakeMotion(rx, ry)
	pump()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FakeButtonPress(xproto.Button1, 0)
		s.FakeButtonRelease(xproto.Button1, 0)
		pump()
	}
}

func BenchmarkButtonDispatch_twm(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newTwm(b, s)
	apps := launchN(b, s, pump, 1)
	c, _ := wm.ClientOf(apps[0].Win)
	rx, ry, _, err := wm.Conn().TranslateCoordinates(c.Title, s.Screens()[0].Root, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	s.FakeMotion(rx, ry)
	pump()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FakeButtonPress(xproto.Button1, 0)
		s.FakeButtonRelease(xproto.Button1, 0)
		pump()
	}
}

func BenchmarkButtonDispatch_gwm(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newGwm(b, s)
	apps := launchN(b, s, pump, 1)
	c, _ := wm.ClientOf(apps[0].Win)
	rx, ry, _, err := wm.Conn().TranslateCoordinates(c.Title, s.Screens()[0].Root, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	s.FakeMotion(rx, ry)
	pump()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FakeButtonPress(xproto.Button1, 0)
		s.FakeButtonRelease(xproto.Button1, 0)
		pump()
	}
}

// --- E1: move/resize round trips ----------------------------------------------

func BenchmarkResizeRoundTrip_swm(b *testing.B) {
	s := xserver.NewServer()
	_, pump, _ := newSwm(b, s)
	apps := launchN(b, s, pump, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := apps[0].Resize(200+i%50, 150+i%50); err != nil {
			b.Fatal(err)
		}
		pump()
	}
}

func BenchmarkResizeRoundTrip_twm(b *testing.B) {
	s := xserver.NewServer()
	_, pump, _ := newTwm(b, s)
	apps := launchN(b, s, pump, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := apps[0].Resize(200+i%50, 150+i%50); err != nil {
			b.Fatal(err)
		}
		pump()
	}
}

func BenchmarkResizeRoundTrip_gwm(b *testing.B) {
	s := xserver.NewServer()
	_, pump, _ := newGwm(b, s)
	apps := launchN(b, s, pump, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := apps[0].Resize(200+i%50, 150+i%50); err != nil {
			b.Fatal(err)
		}
		pump()
	}
}

// --- E2 / ABL1: configuration lookup — resource DB vs private file ------------

func BenchmarkConfigLookup_xrdb(b *testing.B) {
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"swm", "color", "screen0", "XTerm", "xterm", "decoration"}
	classes := []string{"Swm", "Color", "Screen0", "XTerm", "XTerm", "Decoration"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Query(names, classes); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkConfigLookup_twmrc(b *testing.B) {
	cfg, err := twm.ParseConfig(`
BorderWidth 2
ShowIconManager
NoTitle { "xclock" }
Button1 = : title : f.raise
Button2 = : title : f.move
Button3 = : title : f.iconify
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cfg.ButtonFunction(2, twm.ContextTitle) == "" {
			b.Fatal("no match")
		}
	}
}

func BenchmarkConfigParse_xrdbTemplate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := templates.Load(templates.OpenLook); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigParse_twmrc(b *testing.B) {
	src := `
BorderWidth 2
TitleFont "fixed"
ShowIconManager
NoTitle { "xclock" "XBiff" }
Button1 = : title : f.raise
Button2 = : title : f.move
Button3 = : title : f.iconify
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := twm.ParseConfig(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ABL2: object-tree decoration vs direct decoration -------------------------
//
// The same visual frame built through swm's object system vs direct
// window calls; isolates the toolkit overhead the paper attributes to
// OI.

func BenchmarkDecorationAblation_objects(b *testing.B) {
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := xserver.NewServer()
		wm, err := core.New(s, core.Options{DB: db.Clone()})
		if err != nil {
			b.Fatal(err)
		}
		app, err := clients.Launch(s, clients.Config{
			Instance: "xterm", Class: "XTerm", Width: 300, Height: 200,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		wm.Pump()
		b.StopTimer()
		_ = app
		wm.Shutdown()
	}
}

func BenchmarkDecorationAblation_direct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := xserver.NewServer()
		wm, err := twm.New(s, nil)
		if err != nil {
			b.Fatal(err)
		}
		app, err := clients.Launch(s, clients.Config{
			Instance: "xterm", Class: "XTerm", Width: 300, Height: 200,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		wm.Pump()
		b.StopTimer()
		_ = app
		wm.Shutdown()
	}
}

// --- Virtual Desktop operations (FIG3 workload) --------------------------------

func BenchmarkDesktopPan(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newSwm(b, s)
	launchN(b, s, pump, 10)
	scr := wm.Screens()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wm.PanTo(scr, (i%8)*256, (i%5)*128)
	}
}

func BenchmarkPannerUpdate(b *testing.B) {
	s := xserver.NewServer()
	db, _ := templates.Load(templates.OpenLook)
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true, EnablePanner: true})
	if err != nil {
		b.Fatal(err)
	}
	launchN(b, s, wm.Pump, 15)
	c := wm.Clients()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A move marks the panner dirty; the pump flushes the coalesced
		// incremental sync, so the pair is one full panner update.
		wm.MoveClientTo(c, 100+i%500, 100+i%400)
		wm.Pump()
	}
}

func BenchmarkStickUnstick(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newSwm(b, s)
	apps := launchN(b, s, pump, 1)
	c, _ := wm.ClientOf(apps[0].Win)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wm.Stick(c); err != nil {
			b.Fatal(err)
		}
		if err := wm.Unstick(c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: swmcmd round trip -------------------------------------------------------

func BenchmarkSwmcmdRoundTrip(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newSwm(b, s)
	launchN(b, s, pump, 1)
	cmdr := s.Connect("swmcmd")
	root := s.Screens()[0].Root
	atom := cmdr.InternAtom("SWM_COMMAND")
	str := cmdr.InternAtom("STRING")
	payload := []byte("f.iconify(Bench)")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cmdr.ChangeProperty(root, atom, str, 8, xproto.PropModeReplace, payload); err != nil {
			b.Fatal(err)
		}
		pump()
	}
	_ = wm
}

// --- E3: session save / restore ----------------------------------------------------

func BenchmarkSessionSave(b *testing.B) {
	s := xserver.NewServer()
	wm, pump, _ := newSwm(b, s)
	for i := 0; i < 20; i++ {
		_, err := clients.Launch(s, clients.Config{
			Instance: fmt.Sprintf("app%d", i), Class: "App",
			Width: 100, Height: 80, X: i * 10, Y: i * 8,
			Command: []string{fmt.Sprintf("app%d", i), "-flag"},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	pump()
	ctx := &core.FuncContext{Screen: wm.Screens()[0]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wm.ExecuteString(ctx, "f.places"); err != nil {
			b.Fatal(err)
		}
	}
	if !strings.Contains(wm.LastPlaces(), "app7") {
		b.Fatal("places output incomplete")
	}
}

func BenchmarkSessionHintMatch(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString(session.Encode(session.Hint{
			Geometry: "100x80+10+10", State: "NormalState",
			Cmd: fmt.Sprintf("app%d -flag ", i),
		}))
		sb.WriteByte('\n')
	}
	data := sb.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, bad := session.NewTable(data)
		if bad != 0 {
			b.Fatal("bad records")
		}
		if _, ok := tbl.Match([]string{"app49", "-flag"}, ""); !ok {
			b.Fatal("no match")
		}
	}
}

// --- Lisp interpretation cost (the gwm tax in isolation) ----------------------------

func BenchmarkWoolPolicyCall(b *testing.B) {
	env := gwm.NewEnv()
	if _, err := gwm.EvalString(env, gwm.DefaultPolicy); err != nil {
		b.Fatal(err)
	}
	fn, _ := env.Get("describe-window")
	args := []gwm.Value{gwm.Str("shell"), gwm.Str("XTerm")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gwm.Apply(env, fn, args); err != nil {
			b.Fatal(err)
		}
	}
}

// The equivalent decision in swm: one resource lookup.
func BenchmarkSwmPolicyLookup(b *testing.B) {
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"swm", "color", "screen0", "XTerm", "xterm", "decoration"}
	classes := []string{"Swm", "Color", "Screen0", "XTerm", "XTerm", "Decoration"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Query(names, classes); !ok {
			b.Fatal("no match")
		}
	}
	_ = xrdb.New()
}

// --- Tracked perf workloads (cmd/swmbench, BENCH_*.json) ---------------------

// The workloads below are shared with cmd/swmbench through
// internal/perfbench, so `go test -bench 'Perf'` and the JSON report
// measure exactly the same code.

func BenchmarkPerfManage100Clients(b *testing.B) { perfbench.ManageClients(100)(b) }
func BenchmarkPerfRestartAdopt200(b *testing.B)  { perfbench.RestartAdopt(200)(b) }
func BenchmarkPerfXrdbQuery(b *testing.B)        { perfbench.XrdbQuery(b) }
func BenchmarkPerfMoveStorm(b *testing.B)        { perfbench.MoveStorm(b) }
func BenchmarkPerfPanStorm(b *testing.B)         { perfbench.PanStorm(b) }
func BenchmarkPerfPanStormTraced(b *testing.B)   { perfbench.PanStormTraced(b) }

// BenchmarkPerfFleet1000Sessions is the fleet-mode lifecycle at full
// scale; expect seconds per op (it builds and tears down a thousand
// sessions each iteration).
func BenchmarkPerfFleet1000Sessions(b *testing.B) { perfbench.FleetSessions(1000, 10)(b) }

// BenchmarkPerfConcurrentClients64 is the contended 64-connection
// storm against one server — the workload the xserver lock striping is
// gated on.
func BenchmarkPerfConcurrentClients64(b *testing.B) { perfbench.ConcurrentClients(64)(b) }

// BenchmarkPerfHTTPStatsQuery is one warm stats query through the
// full in-process handler stack — the snapshot-cache hit path the
// zero-alloc serving work is gated on (blocking at ≤20 allocs/op).
func BenchmarkPerfHTTPStatsQuery(b *testing.B) { perfbench.HTTPStatsQuery()(b) }

// BenchmarkPerfSwmloadFleetHTTP is the network service layer under
// load: a 64-session fleet behind the swmhttp transport on a loopback
// listener, driven by 128 concurrent swmload workers (one op is a
// complete 20,000-request run).
func BenchmarkPerfSwmloadFleetHTTP(b *testing.B) { perfbench.FleetHTTPLoad(64, 128, 20000)(b) }

// BenchmarkXrdbQueryCold defeats the DB.Query memo with a fresh clone
// per iteration, measuring the raw matching walk the memo shortcuts.
func BenchmarkXrdbQueryCold(b *testing.B) {
	base, err := templates.Load(templates.OpenLook)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"swm", "color", "screen0", "XTerm", "xterm", "decoration"}
	classes := []string{"Swm", "Color", "Screen0", "XTerm", "XTerm", "Decoration"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := base.Clone()
		if _, ok := db.Query(names, classes); !ok {
			b.Fatal("no match")
		}
	}
}
