// Command swm runs the window manager against the in-memory X server
// with a scripted demo session: it loads a template (OpenLook+ or
// Motif emulation), starts clients, exercises the Virtual Desktop,
// sticky windows, icons and session management, and prints ASCII
// renderings of the screen along the way.
//
//	swm                          # default demo with the OpenLook+ template
//	swm -template motif          # Motif emulation
//	swm -resources user.ad       # overlay user resources on the template
//	swm -places session.sh       # write the f.places file here
//	swm -restore session.sh      # restore a previously saved session
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/session"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swm: ")
	template := flag.String("template", "openlook", "configuration template: openlook, motif or default")
	resources := flag.String("resources", "", "resource file overlaid on the template")
	placesOut := flag.String("places", "", "write the f.places session file here")
	restore := flag.String("restore", "", "restore a session from a places file")
	desktop := flag.Bool("desktop", true, "enable the Virtual Desktop")
	panner := flag.Bool("panner", true, "enable the Virtual Desktop panner")
	scrollbars := flag.Bool("scrollbars", false, "enable desktop scrollbars")
	verbose := flag.Bool("v", false, "log WM diagnostics")
	flag.Parse()

	db, err := templates.LoadByName(*template)
	if err != nil {
		log.Fatal(err)
	}
	if *resources != "" {
		data, err := os.ReadFile(*resources)
		if err != nil {
			log.Fatal(err)
		}
		// User files may `#include "openlook"` etc. and override on top.
		if err := db.LoadWithIncludes(strings.NewReader(string(data)), templates.Resolver); err != nil {
			log.Fatal(err)
		}
	}

	s := xserver.NewServer()

	// Session restore: replay the places file into SWM_HINTS before the
	// WM starts, exactly like running it as .xinitrc.
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			log.Fatal(err)
		}
		hints, err := session.ParsePlaces(string(data))
		if err != nil {
			log.Fatal(err)
		}
		boot := s.Connect("xinitrc")
		root := s.Screens()[0].Root
		var sb strings.Builder
		for _, h := range hints {
			sb.WriteString(session.Encode(h))
			sb.WriteByte('\n')
		}
		err = boot.ChangeProperty(root, boot.InternAtom("SWM_HINTS"),
			boot.InternAtom("STRING"), 8, xproto.PropModeAppend, []byte(sb.String()))
		if err != nil {
			log.Fatal(err)
		}
		boot.Close()
		fmt.Printf("restored %d session hints from %s\n", len(hints), *restore)
	}

	opts := core.Options{
		DB:               db,
		VirtualDesktop:   *desktop,
		EnablePanner:     *desktop && *panner,
		EnableScrollbars: *desktop && *scrollbars,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	wm, err := core.New(s, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The demo session: the workloads the paper's introduction
	// motivates — terminals, a sticky clock, a shaped clock, mail.
	term, err := clients.Xterm(s, "xterm: ~/src")
	if err != nil {
		log.Fatal(err)
	}
	db.MustPut("swm*XClock*sticky", "True")
	if _, err := clients.Xclock(s); err != nil {
		log.Fatal(err)
	}
	oclock, err := clients.Oclock(s)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clients.Xbiff(s); err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	fmt.Printf("swm managing %d clients with the %s template\n\n", len(wm.Clients()), *template)
	for _, c := range wm.Clients() {
		state := "normal"
		if c.State == xproto.IconicState {
			state = "iconic"
		}
		sticky := ""
		if c.Sticky {
			sticky = " [sticky]"
		}
		shaped := ""
		if c.Shaped {
			shaped = " [shaped]"
		}
		fmt.Printf("  %-10s decoration=%-10s %s %v%s%s\n",
			c.Class.Instance, c.Decoration(), state, c.FrameRect, sticky, shaped)
	}

	// Exercise the Virtual Desktop.
	if *desktop {
		scr := wm.Screens()[0]
		fmt.Printf("\nVirtual Desktop: %dx%d, viewport %v\n", scr.DesktopW, scr.DesktopH, scr.Viewport())
		wm.PanTo(scr, 400, 300)
		wm.Pump()
		fmt.Printf("after f.pangoto(400,300): viewport %v\n", scr.Viewport())
		wm.PanTo(scr, 0, 0)
		wm.Pump()
	}

	// Iconify the oclock via the function interface.
	if c, ok := wm.ClientOf(oclock.Win); ok {
		if err := wm.Iconify(c); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\noclock iconified (shaped client, shapeit decoration)")
	}

	// Screenshot.
	root := s.Screens()[0].Root
	art, err := raster.RenderWindow(wm.Conn(), root, raster.Options{
		ScaleX: 16, ScaleY: 30, DrawLabels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscreen (%s template):\n%s\n", *template, art)

	// Session save.
	if err := wm.ExecuteString(&core.FuncContext{Screen: wm.Screens()[0]}, "f.places"); err != nil {
		log.Fatal(err)
	}
	if *placesOut != "" {
		if err := os.WriteFile(*placesOut, []byte(wm.LastPlaces()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session saved to %s\n", *placesOut)
	} else {
		fmt.Printf("f.places output:\n%s", wm.LastPlaces())
	}
	_ = term
}
