// Command swmload drives sustained query/exec traffic at a live swm
// fleet over the HTTP transport and reports latency percentiles and
// error rate. It is the measurement half of the network service layer:
// swmhttpd (or swmfleet -listen) serves, swmload asks.
//
// Against an already-running service:
//
//	swmload -addr http://127.0.0.1:7070 -clients 1000 -requests 20000
//
// Self-hosted (spins its own fleet + listener in-process, loads it,
// tears it down — the CI smoke shape, no second process needed):
//
//	swmload -selfhost 64 -clients 200 -requests 5000
//
// The request mix is a pure function of -seed, so two runs against the
// same fleet issue the identical request stream. Exit status is 0 only
// when every request succeeded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/clients"
	"repro/internal/fleet"
	"repro/internal/swmhttp"
	"repro/internal/swmload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmload: ")
	addr := flag.String("addr", "", "base URL of a running service, e.g. http://127.0.0.1:7070")
	selfhost := flag.Int("selfhost", 0, "spin an in-process fleet of N sessions and load it (ignores -addr)")
	nclients := flag.Int("clients", 100, "concurrent closed-loop workers")
	requests := flag.Int("requests", 10000, "total requests across all workers")
	seed := flag.Int64("seed", 1, "request-mix seed")
	execEvery := flag.Int("exec-every", 10, "every Nth request per worker is an exec (0 = queries only)")
	command := flag.String("exec-command", "f.nop", "command execs deliver")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	rate := flag.Float64("rate", 0, "open-loop offered rate in req/s across all workers (0 = closed loop)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	flag.Parse()

	base := *addr
	if *selfhost > 0 {
		var shutdown func()
		var err error
		base, shutdown, err = selfHost(*selfhost)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
	} else if base == "" {
		log.Fatal("need -addr (a running swmhttpd / swmfleet -listen) or -selfhost N")
	}

	sum, err := swmload.Run(swmload.Config{
		BaseURL:     base,
		Clients:     *nclients,
		Requests:    *requests,
		Seed:        *seed,
		ExecEvery:   *execEvery,
		ExecCommand: *command,
		Timeout:     *timeout,
		Rate:        *rate,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
	} else {
		sum.Format(os.Stdout)
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}

// selfHost brings up a fleet of n sessions (two clients each, so
// queries have real state to report) behind a loopback listener, and
// returns the base URL plus a teardown.
func selfHost(n int) (string, func(), error) {
	m, err := fleet.New(fleet.Config{Sessions: n})
	if err != nil {
		return "", nil, err
	}
	m.StartAll()
	m.Drain()
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			if _, err := clients.Launch(m.Session(i).Server(), clients.Config{
				Instance: fmt.Sprintf("s%dc%d", i, j), Class: "XTerm",
				Width: 120, Height: 90, X: 8 * j, Y: 6 * j,
			}); err != nil {
				m.Close()
				return "", nil, err
			}
		}
	}
	m.PumpAll()
	m.Drain()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		m.Close()
		return "", nil, err
	}
	srv := &http.Server{Handler: swmhttp.New(m, swmhttp.Config{}).Handler()}
	go srv.Serve(l) //nolint:errcheck // closed by the teardown below
	log.Printf("self-hosted fleet of %d sessions on %s", n, l.Addr())
	return "http://" + l.Addr().String(), func() {
		srv.Close()
		m.Close()
	}, nil
}
