// Command swmhttpd is the swm network service daemon: a fleet of
// display+WM sessions served over the HTTP/JSON transport
// (internal/swmhttp). It is the long-running half of the service
// layer — swmcmd -http, curl and swmload are its clients.
//
//	swmhttpd                           # 64 sessions on :7070
//	swmhttpd -addr :8080 -sessions 256 -clients 4
//
//	curl localhost:7070/healthz
//	curl localhost:7070/v1/sessions
//	curl localhost:7070/v1/sessions/3/stats
//	curl localhost:7070/metrics
//	curl -X POST -d '{"command":"f.iconify(XTerm)"}' localhost:7070/v1/sessions/3/exec
//
// SIGINT/SIGTERM shuts down gracefully: the listener drains in-flight
// requests, then the fleet closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clients"
	"repro/internal/fleet"
	"repro/internal/swmhttp"
	"repro/internal/templates"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmhttpd: ")
	addr := flag.String("addr", ":7070", "listen address")
	sessions := flag.Int("sessions", 64, "number of display+WM sessions")
	perSession := flag.Int("clients", 2, "clients launched per session")
	workers := flag.Int("workers", 0, "scheduler worker pool size (0 = min(GOMAXPROCS, 8))")
	template := flag.String("template", "openlook", "configuration template: openlook, motif or default")
	verbose := flag.Bool("v", false, "log fleet diagnostics and requests")
	flag.Parse()

	db, err := templates.LoadByName(*template)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleet.Config{Sessions: *sessions, Workers: *workers, DB: db}
	httpCfg := swmhttp.Config{}
	if *verbose {
		cfg.Log = os.Stderr
		httpCfg.Log = os.Stderr
	}

	start := time.Now()
	m, err := fleet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	m.StartAll()
	m.Drain()
	for i := 0; i < m.Sessions(); i++ {
		srv := m.Session(i).Server()
		for j := 0; j < *perSession; j++ {
			if _, err := clients.Launch(srv, clients.Config{
				Instance: fmt.Sprintf("s%dc%d", i, j), Class: "XTerm",
				Width: 120, Height: 90, X: 8 * (j % 12), Y: 6 * (j % 14),
			}); err != nil {
				log.Fatal(err)
			}
		}
		m.Pump(i)
	}
	m.Drain()
	log.Printf("fleet of %d sessions (%d clients each) up in %v, serving on %s",
		m.Sessions(), *perSession, time.Since(start).Round(time.Millisecond), *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := swmhttp.New(m, httpCfg).ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}
