// Command swmcmd demonstrates the paper's out-of-process command
// protocol (§5): "By writing a special property on the root window, swm
// interprets its contents and executes commands."
//
// Because the X server in this reproduction is in-process, swmcmd runs
// a self-contained demonstration: it starts a server + swm + a few
// clients, then delivers the given command exactly the way the real
// swmcmd does — by writing a property from a second client connection —
// and reports the observable effect.
//
// Two protocol forms are supported. The versioned request/response form
// (internal/swmproto) is the default: commands are acknowledged and
// structured state can be queried as JSON. The paper's original one-way
// SWM_COMMAND form is kept behind -legacy.
//
//	swmcmd 'f.iconify(XTerm)'
//	swmcmd -legacy 'f.save(XTerm) f.zoom(XTerm)'
//	swmcmd -query stats
//	swmcmd -query trace
//	swmcmd -query clients
//	swmcmd -query desktop
//	swmcmd -list
//
// With -http, swmcmd targets a running fleet service (swmhttpd or
// swmfleet -listen) instead of the self-contained demo; -session picks
// the fleet session. Query output is identical on both transports —
// the indented JSON result from the one shared dispatch path.
//
//	swmcmd -http http://127.0.0.1:7070 -session 3 -query clients
//	swmcmd -http http://127.0.0.1:7070 -session 3 'f.iconify(XTerm)'
//
// Exit status is the protocol's error-code mapping (swmproto.ExitCode)
// on both transports: 0 success, 1 transport failure, then one code
// per protocol error class (bad_request=2, unknown_op=3, ... — pinned
// by the swmproto tests).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/swmhttp"
	"repro/internal/swmproto"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmcmd: ")
	list := flag.Bool("list", false, "list the window manager functions swm understands")
	render := flag.Bool("render", false, "render the screen after executing the command")
	query := flag.String("query", "", "query swm state: stats, trace, clients or desktop")
	legacy := flag.Bool("legacy", false, "use the one-way SWM_COMMAND form (no acknowledgement)")
	httpBase := flag.String("http", "", "target a running fleet service at this base URL instead of the in-process demo")
	session := flag.Int("session", 0, "fleet session id (with -http)")
	flag.Parse()

	if *list {
		for _, name := range []string{
			"f.raise", "f.lower", "f.iconify", "f.deiconify", "f.move",
			"f.resize", "f.zoom", "f.save", "f.restore", "f.stick",
			"f.unstick", "f.focus", "f.delete", "f.destroy",
			"f.warpvertical", "f.warphorizontal", "f.panvertical",
			"f.panhorizontal", "f.pangoto", "f.places", "f.quit",
			"f.restart", "f.refresh", "f.circleup", "f.circledown",
			"f.menu", "f.setlabel", "f.setbindings", "f.nop",
		} {
			fmt.Println(name)
		}
		return
	}
	if *query == "" && flag.NArg() == 0 {
		log.Fatal("usage: swmcmd [-render] [-legacy] '<f.function ...>' | swmcmd -query stats|trace|clients|desktop") //swm:ok f.function is a usage placeholder, not a registered function
	}
	command := strings.Join(flag.Args(), " ")

	if *httpBase != "" {
		if *legacy {
			log.Fatal("-legacy is the X-property transport; it cannot be combined with -http")
		}
		if *render {
			log.Fatal("-render needs the in-process demo; it cannot be combined with -http")
		}
		runHTTP(*httpBase, *session, *query, command)
		return
	}

	// Bring up the demo session.
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true})
	if err != nil {
		log.Fatal(err)
	}
	// Queries are about observing swm, so record the demo's activity.
	if *query != "" {
		wm.Trace().Enable()
	}
	term, err := clients.Xterm(s, "shell")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clients.Xclock(s); err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	root := s.Screens()[0].Root

	if *query != "" {
		resp, err := runQuery(s, wm, root, *query)
		if err != nil {
			log.Fatal(err)
		}
		conclude(resp)
		if err := printResult(resp); err != nil {
			log.Fatal(err)
		}
		return
	}

	before := describe(wm, term)

	if *legacy {
		// The paper's protocol: write SWM_COMMAND on the root from a
		// separate connection, exactly as the real swmcmd does from an
		// xterm. One-way; errors are only visible in swm's log.
		cmdConn := s.Connect("swmcmd")
		err = cmdConn.ChangeProperty(root, cmdConn.InternAtom(swmproto.CommandProperty),
			cmdConn.InternAtom("STRING"), 8, xproto.PropModeReplace, []byte(command))
		if err != nil {
			log.Fatal(err)
		}
		wm.Pump()
	} else {
		resp, err := runExec(s, wm, root, command)
		if err != nil {
			log.Fatal(err)
		}
		conclude(resp)
	}

	after := describe(wm, term)
	fmt.Printf("executed: %s\n", command)
	fmt.Printf("before:   %s\n", before)
	fmt.Printf("after:    %s\n", after)
	if wm.QuitRequested() {
		fmt.Println("state:    quit requested")
	}
	if wm.RestartRequested() {
		fmt.Println("state:    restart requested")
	}
	if out := wm.LastPlaces(); out != "" {
		fmt.Printf("places file:\n%s", out)
	}
	if *render {
		art, err := raster.RenderWindow(wm.Conn(), root, raster.Options{
			ScaleX: 16, ScaleY: 28, DrawLabels: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("screen:\n%s", art)
	}
}

// runQuery performs one versioned query round-trip and returns the
// reply envelope. The protocol client — and with it the SWM_REPLY
// window — is torn down on every path, success or error; os.Exit in a
// caller of conclude must not skip the deferred Close, so the envelope
// is returned for the caller to judge instead.
func runQuery(s *xserver.Server, wm *core.WM, root xproto.XID, target string) (swmproto.Response, error) {
	cl, err := swmproto.NewClient(s.Connect("swmcmd"), root)
	if err != nil {
		return swmproto.Response{}, err
	}
	defer cl.Close()
	return roundTrip(wm, cl, swmproto.Request{Op: swmproto.OpQuery, Target: target})
}

// runExec delivers one command through the versioned request/response
// protocol, with the same teardown guarantee as runQuery.
func runExec(s *xserver.Server, wm *core.WM, root xproto.XID, command string) (swmproto.Response, error) {
	cl, err := swmproto.NewClient(s.Connect("swmcmd"), root)
	if err != nil {
		return swmproto.Response{}, err
	}
	defer cl.Close()
	return roundTrip(wm, cl, swmproto.Request{Op: swmproto.OpExec, Command: command})
}

// conclude terminates with the protocol's mapped exit status when the
// envelope is an error; success falls through. Both transports funnel
// here, so `swmcmd; echo $?` means the same thing over a property
// write and over HTTP.
func conclude(resp swmproto.Response) {
	if resp.OK {
		return
	}
	fmt.Fprintf(os.Stderr, "swmcmd: %s: %s\n", resp.Code, resp.Error)
	os.Exit(swmproto.ExitCode(resp.Code))
}

// printResult pretty-prints a successful query payload — the one
// output format both transports share.
func printResult(resp swmproto.Response) error {
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, resp.Result, "", "  "); err != nil {
		return err
	}
	fmt.Println(pretty.String())
	return nil
}

// runHTTP performs the query or exec against a running fleet service.
// Transport failures (no listener, bad URL, non-envelope body) exit 1;
// protocol errors exit through the shared code table like the property
// transport.
func runHTTP(base string, session int, query, command string) {
	var resp swmproto.Response
	var err error
	if query != "" {
		resp, err = httpRoundTrip("GET",
			fmt.Sprintf("%s/v1/sessions/%d/%s", base, session, query), nil)
	} else {
		var body []byte
		body, err = json.Marshal(swmhttp.ExecBody{Command: command})
		if err == nil {
			resp, err = httpRoundTrip("POST",
				fmt.Sprintf("%s/v1/sessions/%d/exec", base, session), body)
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	conclude(resp)
	if query != "" {
		if err := printResult(resp); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("executed: %s (session %d acknowledged)\n", command, session)
}

func httpRoundTrip(method, url string, body []byte) (swmproto.Response, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return swmproto.Response{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return swmproto.Response{}, err
	}
	defer res.Body.Close()
	var resp swmproto.Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return swmproto.Response{}, fmt.Errorf("decode reply from %s: %w", url, err)
	}
	io.Copy(io.Discard, res.Body) //nolint:errcheck // drain for keep-alive
	return resp, nil
}

// roundTrip sends one request, pumps the window manager so it serves
// it, and returns the reply.
func roundTrip(wm *core.WM, cl *swmproto.Client, req swmproto.Request) (swmproto.Response, error) {
	id, err := cl.Send(req)
	if err != nil {
		return swmproto.Response{}, err
	}
	wm.Pump()
	resp, ok, err := cl.Poll()
	if err != nil {
		return swmproto.Response{}, err
	}
	if !ok {
		return swmproto.Response{}, fmt.Errorf("no reply to request %d", id)
	}
	if resp.ID != id {
		return swmproto.Response{}, fmt.Errorf("reply %d does not match request %d", resp.ID, id)
	}
	return resp, nil
}

func describe(wm *core.WM, app *clients.App) string {
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		return "xterm: unmanaged"
	}
	state := "normal"
	if c.State == xproto.IconicState {
		state = "iconic"
	}
	extra := ""
	if c.Sticky {
		extra = " sticky"
	}
	return fmt.Sprintf("xterm: %s at %v%s", state, c.FrameRect, extra)
}
