// Command swmcmd demonstrates the paper's out-of-process command
// protocol (§5): "By writing a special property on the root window, swm
// interprets its contents and executes commands."
//
// Because the X server in this reproduction is in-process, swmcmd runs
// a self-contained demonstration: it starts a server + swm + a few
// clients, then delivers the given command string exactly the way the
// real swmcmd does — by writing the SWM_COMMAND property from a second
// client connection — and reports the observable effect.
//
//	swmcmd 'f.iconify(XTerm)'
//	swmcmd 'f.save(XTerm) f.zoom(XTerm)'
//	swmcmd -list
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmcmd: ")
	list := flag.Bool("list", false, "list the window manager functions swm understands")
	render := flag.Bool("render", false, "render the screen after executing the command")
	flag.Parse()

	if *list {
		for _, name := range []string{
			"f.raise", "f.lower", "f.iconify", "f.deiconify", "f.move",
			"f.resize", "f.zoom", "f.save", "f.restore", "f.stick",
			"f.unstick", "f.focus", "f.delete", "f.destroy",
			"f.warpvertical", "f.warphorizontal", "f.panvertical",
			"f.panhorizontal", "f.pangoto", "f.places", "f.quit",
			"f.restart", "f.refresh", "f.circleup", "f.circledown",
			"f.menu", "f.setlabel", "f.setbindings", "f.nop",
		} {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("usage: swmcmd [-render] '<f.function ...>'") //swm:ok f.function is a usage placeholder, not a registered function
	}
	command := strings.Join(flag.Args(), " ")

	// Bring up the demo session.
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true})
	if err != nil {
		log.Fatal(err)
	}
	term, err := clients.Xterm(s, "shell")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clients.Xclock(s); err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	before := describe(wm, term)

	// The actual protocol: write SWM_COMMAND on the root from a separate
	// connection, exactly as the real swmcmd does from an xterm.
	cmdConn := s.Connect("swmcmd")
	root := s.Screens()[0].Root
	err = cmdConn.ChangeProperty(root, cmdConn.InternAtom("SWM_COMMAND"),
		cmdConn.InternAtom("STRING"), 8, xproto.PropModeReplace, []byte(command))
	if err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	after := describe(wm, term)
	fmt.Printf("executed: %s\n", command)
	fmt.Printf("before:   %s\n", before)
	fmt.Printf("after:    %s\n", after)
	if wm.QuitRequested() {
		fmt.Println("state:    quit requested")
	}
	if wm.RestartRequested() {
		fmt.Println("state:    restart requested")
	}
	if out := wm.LastPlaces(); out != "" {
		fmt.Printf("places file:\n%s", out)
	}
	if *render {
		art, err := raster.RenderWindow(wm.Conn(), root, raster.Options{
			ScaleX: 16, ScaleY: 28, DrawLabels: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("screen:\n%s", art)
	}
}

func describe(wm *core.WM, app *clients.App) string {
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		return "xterm: unmanaged"
	}
	state := "normal"
	if c.State == xproto.IconicState {
		state = "iconic"
	}
	extra := ""
	if c.Sticky {
		extra = " sticky"
	}
	return fmt.Sprintf("xterm: %s at %v%s", state, c.FrameRect, extra)
}
