// Command swmcmd demonstrates the paper's out-of-process command
// protocol (§5): "By writing a special property on the root window, swm
// interprets its contents and executes commands."
//
// Because the X server in this reproduction is in-process, swmcmd runs
// a self-contained demonstration: it starts a server + swm + a few
// clients, then delivers the given command exactly the way the real
// swmcmd does — by writing a property from a second client connection —
// and reports the observable effect.
//
// Two protocol forms are supported. The versioned request/response form
// (internal/swmproto) is the default: commands are acknowledged and
// structured state can be queried as JSON. The paper's original one-way
// SWM_COMMAND form is kept behind -legacy.
//
//	swmcmd 'f.iconify(XTerm)'
//	swmcmd -legacy 'f.save(XTerm) f.zoom(XTerm)'
//	swmcmd -query stats
//	swmcmd -query trace
//	swmcmd -query clients
//	swmcmd -query desktop
//	swmcmd -list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/raster"
	"repro/internal/swmproto"
	"repro/internal/templates"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmcmd: ")
	list := flag.Bool("list", false, "list the window manager functions swm understands")
	render := flag.Bool("render", false, "render the screen after executing the command")
	query := flag.String("query", "", "query swm state: stats, trace, clients or desktop")
	legacy := flag.Bool("legacy", false, "use the one-way SWM_COMMAND form (no acknowledgement)")
	flag.Parse()

	if *list {
		for _, name := range []string{
			"f.raise", "f.lower", "f.iconify", "f.deiconify", "f.move",
			"f.resize", "f.zoom", "f.save", "f.restore", "f.stick",
			"f.unstick", "f.focus", "f.delete", "f.destroy",
			"f.warpvertical", "f.warphorizontal", "f.panvertical",
			"f.panhorizontal", "f.pangoto", "f.places", "f.quit",
			"f.restart", "f.refresh", "f.circleup", "f.circledown",
			"f.menu", "f.setlabel", "f.setbindings", "f.nop",
		} {
			fmt.Println(name)
		}
		return
	}
	if *query == "" && flag.NArg() == 0 {
		log.Fatal("usage: swmcmd [-render] [-legacy] '<f.function ...>' | swmcmd -query stats|trace|clients|desktop") //swm:ok f.function is a usage placeholder, not a registered function
	}
	command := strings.Join(flag.Args(), " ")

	// Bring up the demo session.
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	wm, err := core.New(s, core.Options{DB: db, VirtualDesktop: true})
	if err != nil {
		log.Fatal(err)
	}
	// Queries are about observing swm, so record the demo's activity.
	if *query != "" {
		wm.Trace().Enable()
	}
	term, err := clients.Xterm(s, "shell")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := clients.Xclock(s); err != nil {
		log.Fatal(err)
	}
	wm.Pump()

	root := s.Screens()[0].Root

	if *query != "" {
		if err := runQuery(s, wm, root, *query); err != nil {
			log.Fatal(err)
		}
		return
	}

	before := describe(wm, term)

	if *legacy {
		// The paper's protocol: write SWM_COMMAND on the root from a
		// separate connection, exactly as the real swmcmd does from an
		// xterm. One-way; errors are only visible in swm's log.
		cmdConn := s.Connect("swmcmd")
		err = cmdConn.ChangeProperty(root, cmdConn.InternAtom(swmproto.CommandProperty),
			cmdConn.InternAtom("STRING"), 8, xproto.PropModeReplace, []byte(command))
		if err != nil {
			log.Fatal(err)
		}
		wm.Pump()
	} else if err := runExec(s, wm, root, command); err != nil {
		log.Fatal(err)
	}

	after := describe(wm, term)
	fmt.Printf("executed: %s\n", command)
	fmt.Printf("before:   %s\n", before)
	fmt.Printf("after:    %s\n", after)
	if wm.QuitRequested() {
		fmt.Println("state:    quit requested")
	}
	if wm.RestartRequested() {
		fmt.Println("state:    restart requested")
	}
	if out := wm.LastPlaces(); out != "" {
		fmt.Printf("places file:\n%s", out)
	}
	if *render {
		art, err := raster.RenderWindow(wm.Conn(), root, raster.Options{
			ScaleX: 16, ScaleY: 28, DrawLabels: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("screen:\n%s", art)
	}
}

// runQuery performs one versioned query round-trip and prints the
// result. The protocol client — and with it the SWM_REPLY window — is
// torn down on every path, success or error; log.Fatal in a caller
// would skip the deferred Close, so errors are returned instead.
func runQuery(s *xserver.Server, wm *core.WM, root xproto.XID, target string) error {
	cl, err := swmproto.NewClient(s.Connect("swmcmd"), root)
	if err != nil {
		return err
	}
	defer cl.Close()
	resp, err := roundTrip(wm, cl, swmproto.Request{Op: swmproto.OpQuery, Target: target})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("query %s: %s", target, resp.Error)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, resp.Result, "", "  "); err != nil {
		return err
	}
	fmt.Println(pretty.String())
	return nil
}

// runExec delivers one command through the versioned request/response
// protocol, with the same teardown guarantee as runQuery.
func runExec(s *xserver.Server, wm *core.WM, root xproto.XID, command string) error {
	cl, err := swmproto.NewClient(s.Connect("swmcmd"), root)
	if err != nil {
		return err
	}
	defer cl.Close()
	resp, err := roundTrip(wm, cl, swmproto.Request{Op: swmproto.OpExec, Command: command})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("exec %q: %s", command, resp.Error)
	}
	return nil
}

// roundTrip sends one request, pumps the window manager so it serves
// it, and returns the reply.
func roundTrip(wm *core.WM, cl *swmproto.Client, req swmproto.Request) (swmproto.Response, error) {
	id, err := cl.Send(req)
	if err != nil {
		return swmproto.Response{}, err
	}
	wm.Pump()
	resp, ok, err := cl.Poll()
	if err != nil {
		return swmproto.Response{}, err
	}
	if !ok {
		return swmproto.Response{}, fmt.Errorf("no reply to request %d", id)
	}
	if resp.ID != id {
		return swmproto.Response{}, fmt.Errorf("reply %d does not match request %d", resp.ID, id)
	}
	return resp, nil
}

func describe(wm *core.WM, app *clients.App) string {
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		return "xterm: unmanaged"
	}
	state := "normal"
	if c.State == xproto.IconicState {
		state = "iconic"
	}
	extra := ""
	if c.Sticky {
		extra = " sticky"
	}
	return fmt.Sprintf("xterm: %s at %v%s", state, c.FrameRect, extra)
}
