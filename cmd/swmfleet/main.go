// Command swmfleet runs a fleet of independent swm sessions — display
// server, connection, window manager — in one process, shares the
// read-mostly expensive state (resource database, compiled query trie,
// decoration prototype cache) across all of them, and reports the
// fleet's health: the WM-as-a-service load story from the ROADMAP.
//
//	swmfleet                          # 64 sessions, 10 clients each
//	swmfleet -sessions 1000           # the thousand-session configuration
//	swmfleet -restart 0.25            # restart-adopt a quarter of the fleet
//	swmfleet -crash 3                 # panic-crash session 3, show isolation
//	swmfleet -query                   # swmcmd-style stats query via session 0
//	swmfleet -listen :7070            # serve the fleet over HTTP until SIGINT
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/swmhttp"
	"repro/internal/templates"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmfleet: ")
	sessions := flag.Int("sessions", 64, "number of display+WM sessions")
	perSession := flag.Int("clients", 10, "clients launched per session")
	workers := flag.Int("workers", 0, "scheduler worker pool size (0 = min(GOMAXPROCS, 8))")
	template := flag.String("template", "openlook", "configuration template: openlook, motif or default")
	restart := flag.Float64("restart", 0.25, "fraction of the fleet to restart-adopt")
	crash := flag.Int("crash", -1, "panic-crash this session to demonstrate isolation (-1 = none)")
	query := flag.Bool("query", false, "print a swmcmd-style stats query against session 0")
	listen := flag.String("listen", "", "serve the fleet over HTTP on this address until SIGINT")
	verbose := flag.Bool("v", false, "log fleet diagnostics")
	flag.Parse()

	db, err := templates.LoadByName(*template)
	if err != nil {
		log.Fatal(err)
	}
	cfg := fleet.Config{
		Sessions: *sessions,
		Workers:  *workers,
		DB:       db,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	start := time.Now()
	m, err := fleet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.StartAll()
	m.Drain()
	fmt.Printf("started %d sessions in %v (%d shared prototypes)\n",
		m.Stats().Live, time.Since(start).Round(time.Millisecond), m.Protos().Len())

	launch := time.Now()
	for i := 0; i < m.Sessions(); i++ {
		srv := m.Session(i).Server()
		for j := 0; j < *perSession; j++ {
			if _, err := clients.Launch(srv, clients.Config{
				Instance: fmt.Sprintf("s%dc%d", i, j), Class: "XTerm",
				Width: 120, Height: 90, X: 8 * (j % 12), Y: 6 * (j % 14),
			}); err != nil {
				log.Fatal(err)
			}
		}
		m.Pump(i)
	}
	m.Drain()
	fmt.Printf("managed %d clients in %v\n",
		m.Sessions()*(*perSession), time.Since(launch).Round(time.Millisecond))

	if *crash >= 0 && *crash < m.Sessions() {
		m.Exec(*crash, func(*core.WM) { panic("swmfleet -crash demonstration") })
		m.PumpAll()
		m.Drain()
		fmt.Printf("crashed session %d: fleet now %+v\n", *crash, m.Stats())
	}

	if n := int(float64(m.Sessions()) * *restart); n > 0 {
		rs := time.Now()
		for i := 0; i < n; i++ {
			m.Restart(i)
		}
		m.Drain()
		fmt.Printf("restart-adopted %d sessions in %v\n", n, time.Since(rs).Round(time.Millisecond))
	}

	if *query {
		// The fleet mirrors its gauges into every session's registry, so
		// an swmcmd -query stats against any session shows fleet health;
		// print the same snapshot here.
		var snap any
		m.Exec(0, func(wm *core.WM) { snap = wm.Metrics().Snapshot() })
		m.Drain()
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session 0 stats (incl. fleet.* gauges):\n%s\n", data)
	}

	st := m.Stats()
	fmt.Printf("fleet: sessions=%d live=%d failed=%d panics=%d restarts=%d queue=%d\n",
		st.Sessions, st.Live, st.Failed, st.Panics, st.Restarts, st.QueueDepth)

	if *listen != "" {
		httpCfg := swmhttp.Config{}
		if *verbose {
			httpCfg.Log = os.Stderr
		}
		fmt.Printf("serving on %s (SIGINT to stop)\n", *listen)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := swmhttp.New(m, httpCfg).ListenAndServe(ctx, *listen); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}

	m.Close()
	fmt.Println("fleet closed")
}
