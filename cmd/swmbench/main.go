// Command swmbench runs the repository's tracked performance workloads
// (internal/perfbench) and writes a BENCH_<n>.json report: ns/op,
// allocs/op and B/op for the manage, move-storm and pan-storm shapes,
// the twm/swm/gwm comparison, and the HTTP serving-path workloads.
//
//	swmbench -o BENCH_10.json -check -delta BENCH_9.json -delta-out delta.md
//
// With -check, the binary exits non-zero when a workload exceeds its
// blocking allocation budget (perfbench.AllocBudgets), its wall-clock
// budget (perfbench.WallBudgets), or — for the load workloads — misses
// its traffic budget (perfbench.LoadBudgets: a qps floor and a p99
// ceiling). Wall-clock numbers depend on the machine, so wall budgets
// are order-of-magnitude ceilings reserved for workloads whose whole
// point is bounding an end-to-end shape; everything else keeps timing
// advisory and allocation counts enforced.
//
// With -delta pointing at a previous report, a markdown comparison
// table (ns/op, allocs/op, qps, p99 per workload) is written to
// -delta-out, or stdout when -delta-out is empty — the table the CI
// bench job appends to its job summary. A missing -delta file is
// skipped with a note, not an error, so the first run after a report
// rename still passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/perfbench"
)

func main() {
	out := flag.String("o", "BENCH_10.json", "report output path (\"-\" for stdout)")
	check := flag.Bool("check", false, "fail when a blocking allocation, wall-clock, or load budget is exceeded")
	deltaIn := flag.String("delta", "", "previous BENCH_<n>.json to diff against (missing file is skipped)")
	deltaOut := flag.String("delta-out", "", "write the markdown delta table here instead of stdout")
	flag.Parse()

	results := perfbench.Run()
	report := perfbench.Report{
		GoVersion:    runtime.Version(),
		Workloads:    results,
		PreChange:    perfbench.PreChange,
		AllocBudgets: perfbench.AllocBudgets,
		WallBudgets:  perfbench.WallBudgets,
		Load:         perfbench.LoadSummaries(),
	}

	fmt.Printf("%-32s %14s %12s %10s\n", "workload", "ns/op", "allocs/op", "B/op")
	failed := false
	for _, r := range results {
		if r.Iterations == 0 {
			fmt.Fprintf(os.Stderr, "swmbench: workload %s failed to run\n", r.Name)
			failed = true
			continue
		}
		line := fmt.Sprintf("%-32s %14.0f %12d %10d", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if base, ok := perfbench.PreChange[r.Name]; ok && base.AllocsPerOp > 0 {
			line += fmt.Sprintf("   (pre-change: %.0f ns/op, %d allocs/op)", base.NsPerOp, base.AllocsPerOp)
		}
		if budget, ok := perfbench.AllocBudgets[r.Name]; ok && r.AllocsPerOp > budget {
			line += fmt.Sprintf("   OVER BUDGET (%d > %d allocs/op)", r.AllocsPerOp, budget)
			if *check {
				failed = true
			}
		}
		if budget, ok := perfbench.WallBudgets[r.Name]; ok && r.NsPerOp > budget {
			line += fmt.Sprintf("   OVER WALL BUDGET (%.0f > %.0f ns/op)", r.NsPerOp, budget)
			if *check {
				failed = true
			}
		}
		fmt.Println(line)
	}

	if len(report.Load) > 0 {
		fmt.Println()
		for name, sum := range report.Load {
			fmt.Printf("%s traffic: %d requests, %d clients, %d sessions\n",
				name, sum.Requests, sum.Clients, sum.Sessions)
			fmt.Printf("  p50=%v p95=%v p99=%v max=%v  %.0f req/s  errors %.2f%%\n",
				sum.P50, sum.P95, sum.P99, sum.Max, sum.QPS, 100*sum.ErrorRate())
		}
	}
	for name, budget := range perfbench.LoadBudgets {
		sum, ok := report.Load[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "swmbench: load budget for %s has no recorded summary\n", name)
			if *check {
				failed = true
			}
			continue
		}
		if sum.QPS < budget.MinQPS {
			fmt.Printf("%s UNDER THROUGHPUT FLOOR (%.0f < %.0f req/s)\n", name, sum.QPS, budget.MinQPS)
			if *check {
				failed = true
			}
		}
		if sum.P99 > budget.MaxP99 {
			fmt.Printf("%s OVER P99 CEILING (%v > %v)\n", name, sum.P99, budget.MaxP99)
			if *check {
				failed = true
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swmbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "swmbench: %v\n", err)
		os.Exit(1)
	} else {
		fmt.Printf("\nreport written to %s\n", *out)
	}

	if *deltaIn != "" {
		if err := writeDelta(*deltaIn, *deltaOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "swmbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeDelta diffs the freshly measured report against a previous one
// on disk. A missing previous report is not an error.
func writeDelta(prevPath, outPath string, cur perfbench.Report) error {
	raw, err := os.ReadFile(prevPath)
	if os.IsNotExist(err) {
		fmt.Printf("no previous report at %s; skipping delta\n", prevPath)
		return nil
	}
	if err != nil {
		return err
	}
	var prev perfbench.Report
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("parse %s: %w", prevPath, err)
	}
	table := perfbench.DeltaTable(prev, cur)
	if outPath == "" {
		fmt.Printf("\ndelta vs %s:\n%s", prevPath, table)
		return nil
	}
	return os.WriteFile(outPath, []byte(table), 0o644)
}
