// Command swmbench runs the repository's tracked performance workloads
// (internal/perfbench) and writes a BENCH_<n>.json report: ns/op,
// allocs/op and B/op for the manage, move-storm and pan-storm shapes
// plus the twm/swm/gwm comparison.
//
//	swmbench -o BENCH_9.json -check
//
// With -check, the binary exits non-zero when a workload exceeds its
// blocking allocation budget (perfbench.AllocBudgets) or, for the few
// workloads that carry one, its wall-clock budget
// (perfbench.WallBudgets). Wall-clock numbers depend on the machine,
// so wall budgets are order-of-magnitude ceilings reserved for
// workloads — fleet-1000-sessions and concurrent-clients-64 — whose
// whole point is bounding an end-to-end shape; everything else keeps
// timing advisory and allocation counts enforced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/perfbench"
)

func main() {
	out := flag.String("o", "BENCH_9.json", "report output path (\"-\" for stdout)")
	check := flag.Bool("check", false, "fail when a blocking allocation or wall-clock budget is exceeded")
	flag.Parse()

	results := perfbench.Run()
	report := perfbench.Report{
		GoVersion:    runtime.Version(),
		Workloads:    results,
		PreChange:    perfbench.PreChange,
		AllocBudgets: perfbench.AllocBudgets,
		WallBudgets:  perfbench.WallBudgets,
		Load:         perfbench.LoadSummaries(),
	}

	fmt.Printf("%-32s %14s %12s %10s\n", "workload", "ns/op", "allocs/op", "B/op")
	failed := false
	for _, r := range results {
		if r.Iterations == 0 {
			fmt.Fprintf(os.Stderr, "swmbench: workload %s failed to run\n", r.Name)
			failed = true
			continue
		}
		line := fmt.Sprintf("%-32s %14.0f %12d %10d", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if base, ok := perfbench.PreChange[r.Name]; ok && base.AllocsPerOp > 0 {
			line += fmt.Sprintf("   (pre-change: %.0f ns/op, %d allocs/op)", base.NsPerOp, base.AllocsPerOp)
		}
		if budget, ok := perfbench.AllocBudgets[r.Name]; ok && r.AllocsPerOp > budget {
			line += fmt.Sprintf("   OVER BUDGET (%d > %d allocs/op)", r.AllocsPerOp, budget)
			if *check {
				failed = true
			}
		}
		if budget, ok := perfbench.WallBudgets[r.Name]; ok && r.NsPerOp > budget {
			line += fmt.Sprintf("   OVER WALL BUDGET (%.0f > %.0f ns/op)", r.NsPerOp, budget)
			if *check {
				failed = true
			}
		}
		fmt.Println(line)
	}

	if len(report.Load) > 0 {
		fmt.Println()
		for name, sum := range report.Load {
			fmt.Printf("%s traffic: %d requests, %d clients, %d sessions\n",
				name, sum.Requests, sum.Clients, sum.Sessions)
			fmt.Printf("  p50=%v p95=%v p99=%v max=%v  %.0f req/s  errors %.2f%%\n",
				sum.P50, sum.P95, sum.P99, sum.Max, sum.QPS, 100*sum.ErrorRate())
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "swmbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "swmbench: %v\n", err)
		os.Exit(1)
	} else {
		fmt.Printf("\nreport written to %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}
