// Command swmrender regenerates the paper's figures as ASCII renderings
// of the same panel definitions, using the simulated X server:
//
//	swmrender -figure 1   OpenLook+ decoration (paper Figure 1)
//	swmrender -figure 2   reparented root panel (paper Figure 2)
//	swmrender -figure 3   Virtual Desktop panner (paper Figure 3)
//	swmrender -figure 0   all three
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/clients"
	"repro/internal/core"
	"repro/internal/icccm"
	"repro/internal/raster"
	"repro/internal/templates"
	"repro/internal/xserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmrender: ")
	figure := flag.Int("figure", 0, "figure number to render (1-3, 0 = all)")
	flag.Parse()

	figures := map[int]func() (string, string){
		1: figure1,
		2: figure2,
		3: figure3,
	}
	if *figure != 0 {
		fn, ok := figures[*figure]
		if !ok {
			log.Fatalf("no figure %d (valid: 1, 2, 3)", *figure)
		}
		title, art := fn()
		fmt.Printf("%s\n\n%s\n", title, art)
		return
	}
	for _, n := range []int{1, 2, 3} {
		title, art := figures[n]()
		fmt.Printf("%s\n\n%s\n\n", title, art)
	}
	_ = os.Stdout
}

func newWM(opts core.Options) (*xserver.Server, *core.WM) {
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	opts.DB = db
	wm, err := core.New(s, opts)
	if err != nil {
		log.Fatal(err)
	}
	return s, wm
}

// figure1 reproduces Figure 1: a client window decorated with the
// paper's openLook panel (pulldown / name / nail buttons + client).
func figure1() (string, string) {
	s, wm := newWM(core.Options{})
	app, err := clients.Launch(s, clients.Config{
		Instance: "xterm", Class: "XTerm", Name: "swm demo",
		Width: 320, Height: 168,
	})
	if err != nil {
		log.Fatal(err)
	}
	wm.Pump()
	c, ok := wm.ClientOf(app.Win)
	if !ok {
		log.Fatal("client not managed")
	}
	art, err := raster.RenderWindow(wm.Conn(), c.FrameWindow(), raster.Options{DrawLabels: true})
	if err != nil {
		log.Fatal(err)
	}
	return "Figure 1: OpenLook+ Decoration (Swm*panel.openLook)", art
}

// figure2 reproduces Figure 2: the reparented RootPanel with its 4x2
// grid of command buttons, using the paper's definition verbatim.
func figure2() (string, string) {
	s := xserver.NewServer()
	db, err := templates.Load(templates.OpenLook)
	if err != nil {
		log.Fatal(err)
	}
	db.MustPut("swm*rootPanels", "RootPanel")
	db.MustPut("Swm*panel.RootPanel",
		"button quit +0+0\nbutton restart +1+0\nbutton iconify +2+0\nbutton deiconify +3+0\n"+
			"button move +0+1\nbutton resize +1+1\nbutton raise +2+1\nbutton lower +3+1")
	wm, err := core.New(s, core.Options{DB: db})
	if err != nil {
		log.Fatal(err)
	}
	wm.Pump()
	panels := wm.Screens()[0].RootPanels()
	if len(panels) == 0 {
		log.Fatal("root panel missing")
	}
	art, err := raster.RenderWindow(wm.Conn(), panels[0].FrameWindow(), raster.Options{DrawLabels: true})
	if err != nil {
		log.Fatal(err)
	}
	return "Figure 2: Root Panel Example (Swm*panel.RootPanel)", art
}

// figure3 reproduces Figure 3: the Virtual Desktop panner with
// miniature windows and the viewport outline.
func figure3() (string, string) {
	s, wm := newWM(core.Options{VirtualDesktop: true, EnablePanner: true})
	scr := wm.Screens()[0]
	// Spread a few clients over the desktop like the paper's screenshot.
	positions := []struct {
		inst string
		x, y int
		w, h int
	}{
		{"xterm", 200, 150, 600, 400},
		{"emacs", 1400, 300, 700, 500},
		{"xclock", 2600, 200, 300, 300},
		{"xmail", 600, 1500, 500, 350},
		{"xfig", 2200, 1800, 800, 600},
		{"xcalc", 3400, 2600, 300, 400},
	}
	for _, p := range positions {
		_, err := clients.Launch(s, clients.Config{
			Instance: p.inst, Class: p.inst, Width: p.w, Height: p.h,
			NormalHints: &icccm.NormalHints{Flags: icccm.USPosition, X: p.x, Y: p.y},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	wm.Pump()
	wm.PanTo(scr, 25, 25)
	wm.Pump()
	p := scr.Panner()
	art, err := raster.RenderWindow(wm.Conn(), p.Window(), raster.Options{
		ScaleX: 2, ScaleY: 4, DrawLabels: false,
	})
	if err != nil {
		log.Fatal(err)
	}
	return "Figure 3: Virtual Desktop Panner (miniatures + viewport outline)", art
}
