// Command swmvet runs swm's repo-specific static-analysis suite
// (internal/analysis) over the given package patterns:
//
//	go run ./cmd/swmvet ./...
//	go run ./cmd/swmvet -json ./internal/core
//	go run ./cmd/swmvet -analyzers conncheck,lockorder ./internal/xserver
//
// The exit status is 0 when every finding is waived or absent, 1 when
// unwaived findings remain, and 2 on usage or load errors — so the
// blocking CI job is just `go run ./cmd/swmvet ./...`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("swmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable findings (including waived ones)")
	showWaived := fs.Bool("waived", false, "also list waived findings in text output")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var all []analysis.Finding
	loadBroken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "swmvet: %s: type error: %v\n", pkg.ImportPath, terr)
			loadBroken = true
		}
		all = append(all, analysis.Run(pkg, loader.Ctx, analyzers)...)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, all); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range all {
			if f.Waived {
				if *showWaived {
					fmt.Fprintf(stdout, "%s (waived: %s)\n", f, f.Reason)
				}
				continue
			}
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stdout, "swmvet: %s\n", analysis.Summary(all))
	}

	switch {
	case loadBroken:
		return 2
	case analysis.Unwaived(all) > 0:
		return 1
	}
	return 0
}
