// Command swmvet runs swm's repo-specific static-analysis suite
// (internal/analysis) over the given package patterns:
//
//	go run ./cmd/swmvet ./...
//	go run ./cmd/swmvet -json ./internal/core
//	go run ./cmd/swmvet -sarif ./... > swmvet.sarif
//	go run ./cmd/swmvet -analyzers conncheck,lockorder ./internal/xserver
//	go run ./cmd/swmvet -fixtures
//
// The exit status is 0 when every finding is waived or absent, 1 when
// unwaived findings remain, and 2 on usage or load errors — so the
// blocking CI job is just `go run ./cmd/swmvet ./...`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("swmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable findings (including waived ones)")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	showWaived := fs.Bool("waived", false, "also list waived findings in text output")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fixtures := fs.Bool("fixtures", false, "self-check: run every analyzer against its golden fixtures and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "swmvet: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *fixtures {
		return runFixtures(loader, analyzers, stdout, stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var all []analysis.Finding
	loadBroken := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "swmvet: %s: type error: %v\n", pkg.ImportPath, terr)
			loadBroken = true
		}
		all = append(all, analysis.Run(pkg, loader.Ctx, analyzers)...)
	}

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, all); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(stdout, analyzers, all); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, f := range all {
			if f.Waived {
				if *showWaived {
					fmt.Fprintf(stdout, "%s (waived: %s)\n", f, f.Reason)
				}
				continue
			}
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stdout, "swmvet: %s\n", analysis.Summary(all))
	}

	switch {
	case loadBroken:
		return 2
	case analysis.Unwaived(all) > 0:
		return 1
	}
	return 0
}

// runFixtures golden-tests each requested analyzer against its
// testdata package, the same check `go test ./internal/analysis` runs
// — available standalone so a CI step (or a developer mid-refactor)
// can validate the suite without the test harness.
func runFixtures(loader *analysis.Loader, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	failed := false
	for _, a := range analyzers {
		dir := filepath.Join(loader.Ctx.ModuleDir, "internal", "analysis", "testdata", a.Name)
		if _, err := os.Stat(dir); err != nil {
			fmt.Fprintf(stderr, "swmvet: %s: no fixture directory (%s)\n", a.Name, dir)
			failed = true
			continue
		}
		t := &cliT{name: a.Name, out: stderr}
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(fixtureAbort); !ok {
						panic(r)
					}
				}
			}()
			analysis.RunGolden(t, loader, a, dir)
		}()
		if t.failed {
			failed = true
			fmt.Fprintf(stdout, "swmvet: %-14s FAIL\n", a.Name)
		} else {
			fmt.Fprintf(stdout, "swmvet: %-14s ok\n", a.Name)
		}
	}
	if failed {
		return 1
	}
	return 0
}

// fixtureAbort unwinds Fatalf the way testing.T's runtime.Goexit does.
type fixtureAbort struct{}

// cliT adapts the golden driver's TestingT to CLI output.
type cliT struct {
	name   string
	out    io.Writer
	failed bool
}

func (t *cliT) Helper() {}

func (t *cliT) Errorf(format string, args ...any) {
	t.failed = true
	fmt.Fprintf(t.out, "swmvet: %s: %s\n", t.name, fmt.Sprintf(format, args...))
}

func (t *cliT) Fatalf(format string, args ...any) {
	t.Errorf(format, args...)
	panic(fixtureAbort{})
}
