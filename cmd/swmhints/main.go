// Command swmhints is the session-hint client from the paper (§7): it
// encodes one client's saved state as a record that swm reads at
// startup. In the paper it appends the record to a root-window property;
// here (the server is in-process) it prints the record to stdout, and a
// places file pipes these lines into swm's bootstrap.
//
//	swmhints -geometry 120x120+1010+359 -icongeometry +0+0 \
//	    -state NormalState -cmd "oclock -geom 100x100 "
//
// With -decode FILE it parses a places file back into records, which is
// what `swm -places FILE` does internally.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/session"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swmhints: ")

	geometry := flag.String("geometry", "", "window geometry (WxH+X+Y)")
	iconGeometry := flag.String("icongeometry", "", "icon position (+X+Y)")
	state := flag.String("state", "NormalState", "NormalState or IconicState")
	sticky := flag.Bool("sticky", false, "window is sticky")
	rootIcon := flag.Bool("rooticon", false, "icon lives on the root window")
	machine := flag.String("machine", "", "WM_CLIENT_MACHINE for remote clients")
	cmd := flag.String("cmd", "", "exact WM_COMMAND string")
	decode := flag.String("decode", "", "parse a places file and dump its records")
	flag.Parse()

	if *decode != "" {
		data, err := os.ReadFile(*decode)
		if err != nil {
			log.Fatal(err)
		}
		hints, err := session.ParsePlaces(string(data))
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hints {
			fmt.Println(session.Encode(h))
		}
		return
	}

	if *geometry == "" || *cmd == "" {
		log.Fatal("both -geometry and -cmd are required (see -h)")
	}
	h := session.Hint{
		Geometry:     *geometry,
		IconGeometry: *iconGeometry,
		State:        *state,
		Sticky:       *sticky,
		IconOnRoot:   *rootIcon,
		Machine:      *machine,
		Cmd:          *cmd,
	}
	record := session.Encode(h)
	// Validate by round-tripping before emitting.
	if _, err := session.Decode(record); err != nil {
		log.Fatalf("invalid hint: %v", err)
	}
	fmt.Println(record)
}
